"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from repro.bench.plotting import MARKERS, SKIP_COLUMNS, _parse, ascii_chart


class TestParse:
    def test_numbers(self):
        assert _parse(3) == 3.0
        assert _parse(2.5) == 2.5
        assert _parse("0.123") == 0.123

    def test_decorated_numbers(self):
        assert _parse("80%") == 80.0
        assert _parse("1.50x") == 1.5
        assert _parse("1,234") == 1234.0

    def test_non_numbers(self):
        assert _parse("TO") is None
        assert _parse("-") is None


class TestChart:
    HEADERS = ["x", "fast", "slow"]
    ROWS = [
        ["20%", 0.01, 0.1],
        ["40%", 0.05, 0.9],
        ["60%", 0.2, 4.0],
        ["80%", 0.9, 21.0],
    ]

    def test_renders_axes_and_legend(self):
        chart = ascii_chart(self.HEADERS, self.ROWS)
        assert "o=fast" in chart and "x=slow" in chart
        assert "[log y]" in chart
        assert "20%" in chart and "80%" in chart

    def test_extremes_on_scale(self):
        chart = ascii_chart(self.HEADERS, self.ROWS)
        first_line = chart.splitlines()[0]
        assert "21" in first_line  # top of the log scale ~ max value

    def test_markers_present(self):
        chart = ascii_chart(self.HEADERS, self.ROWS)
        body = "\n".join(chart.splitlines()[:-3])
        assert "o" in body and "x" in body

    def test_skip_columns_excluded(self):
        chart = ascii_chart(
            ["x", "time (s)", "bicliques"],
            [["a", 1.0, 100], ["b", 2.0, 9000]],
        )
        assert "bicliques" not in chart
        assert "time (s)" in chart

    def test_unparseable_cells_skipped(self):
        chart = ascii_chart(
            ["x", "t"], [["a", 1.0], ["b", "TO"], ["c", 4.0]]
        )
        assert "o=t" in chart

    def test_empty_when_nothing_plottable(self):
        assert ascii_chart(["x", "t"], [["a", "TO"], ["b", "TO"]]) == ""
        assert ascii_chart(["x", "t"], [["a", 1.0]]) == ""

    def test_linear_scale(self):
        chart = ascii_chart(self.HEADERS, self.ROWS, log_y=False)
        assert "[linear y]" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_chart(["x", "t"], [["a", 5.0], ["b", 5.0]])
        assert "o=t" in chart

    def test_many_series_marker_cycle(self):
        headers = ["x"] + [f"s{i}" for i in range(len(MARKERS) + 2)]
        rows = [
            ["a"] + [float(i + 1) for i in range(len(MARKERS) + 2)],
            ["b"] + [float(i + 2) for i in range(len(MARKERS) + 2)],
        ]
        chart = ascii_chart(headers, rows)
        assert "s0" in chart

    def test_skip_columns_is_lowercase(self):
        assert all(s == s.lower() for s in SKIP_COLUMNS)
