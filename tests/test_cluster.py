"""Tests for federated enumeration (repro.cluster).

Unit-tests the slice planner, the exactly-once range arbiter, and the
coordinator journal; service-level tests exercise the worker's ``/slices``
surface in-process; the chaos tests at the bottom boot real worker
processes and verify the two headline guarantees: a SIGKILL'd worker's
slices are reassigned and the merged result is exact, and a SIGKILL'd
coordinator restarts from completed-slice state without re-running
finished shards.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro import BipartiteGraph, run_mbe
from repro.bigraph.generators import planted_bicliques
from repro.bigraph.io import write_edge_list
from repro.cluster import (
    ClusterConfig,
    ClusterCoordinator,
    RangeCoverage,
    SliceSpec,
    load_cluster_journal,
    plan_slices,
)
from repro.cluster.journal import ClusterJournal, ClusterJournalError
from repro.core.parallel import addressable_roots, plan_root_ranges
from repro.obs.sinks import parse_prometheus_text
from repro.serve import (
    EnumerationService,
    JobSpec,
    JobValidationError,
    ServiceConfig,
    make_http_server,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

EDGES = [[0, 0], [0, 1], [1, 0], [1, 1], [2, 1]]


def _graph(seed=3, noise=60):
    return planted_bicliques(30, 30, 5, noise_edges=noise, seed=seed)


def _truth(graph):
    return run_mbe(graph, "mbet", collect=True).biclique_set()


# --------------------------------------------------------------------------
# root-range slicing (the addressable work units)


class TestRootRanges:
    @pytest.mark.parametrize("n_slices", [1, 2, 3, 7, 100])
    def test_plan_covers_contiguously(self, n_slices):
        g = _graph()
        roots = addressable_roots(g)
        ranges = plan_root_ranges(g, n_slices)
        assert 1 <= len(ranges) <= n_slices
        assert ranges[0][0] == 0 and ranges[-1][1] == len(roots)
        for (_, a_hi), (b_lo, _) in zip(ranges, ranges[1:]):
            assert a_hi == b_lo  # contiguous, no gap, no overlap
        assert all(lo < hi for lo, hi in ranges)

    def test_root_range_union_equals_full_enumeration(self):
        g = _graph()
        truth = _truth(g)
        merged = []
        for lo, hi in plan_root_ranges(g, 4):
            part = run_mbe(g, "parallel", collect=True, workers=1,
                           root_range=(lo, hi))
            merged.extend(part.bicliques)
        assert len(merged) == len(set(merged))  # disjoint shards
        assert set(merged) == truth

    def test_out_of_space_root_range_is_empty(self):
        g = _graph()
        n = len(addressable_roots(g))
        result = run_mbe(g, "parallel", collect=True, workers=1,
                         root_range=(n + 5, n + 9))
        assert result.count == 0 and result.complete

    def test_invalid_root_range_rejected(self):
        with pytest.raises(ValueError, match="root_range"):
            run_mbe(_graph(), "parallel", workers=1, root_range=(3, 3))


# --------------------------------------------------------------------------
# slice specs


class TestSliceSpec:
    def _spec(self, **kw):
        kw.setdefault("slice_id", "s0")
        kw.setdefault("lo", 0)
        kw.setdefault("hi", 5)
        kw.setdefault("n_roots", 10)
        kw.setdefault("edges", EDGES)
        return SliceSpec(**kw)

    def test_roundtrip(self):
        spec = self._spec()
        assert SliceSpec.from_dict(spec.as_dict()) == spec

    @pytest.mark.parametrize("bad,match", [
        ({"lo": 5, "hi": 5}, "slice range"),
        ({"lo": -1}, "slice range"),
        ({"hi": 11}, "slice range"),
        ({"edges": None}, "exactly one"),
        ({"edges": EDGES, "dataset": "mti"}, "exactly one"),
    ])
    def test_validation(self, bad, match):
        with pytest.raises(JobValidationError, match=match):
            SliceSpec.from_dict({**self._spec().as_dict(), **bad})

    def test_unknown_fields_rejected(self):
        with pytest.raises(JobValidationError, match="unknown slice"):
            SliceSpec.from_dict({**self._spec().as_dict(), "bogus": 1})

    def test_fingerprint_binds_identity_not_packaging(self):
        a, b = self._spec(), self._spec()
        assert a.fingerprint() == b.fingerprint()
        assert self._spec(hi=6).fingerprint() != a.fingerprint()
        assert self._spec(seed=1).fingerprint() != a.fingerprint()
        # a time limit changes execution, not identity
        assert self._spec(time_limit=9.0).fingerprint() == a.fingerprint()
        # the graph's content hash is identity
        assert self._spec(graph_key="a" * 64).fingerprint() != \
            a.fingerprint()

    def test_graph_key_round_trips_and_old_journals_load(self):
        spec = self._spec(graph_key="a" * 64)
        assert SliceSpec.from_dict(spec.as_dict()) == spec
        # a journal written before the field existed still loads
        legacy = {
            k: v for k, v in self._spec().as_dict().items()
            if k != "graph_key"
        }
        assert SliceSpec.from_dict(legacy).graph_key is None

    def test_job_payload_pins_engine_and_forbids_fallback(self):
        payload = self._spec().to_job_payload()
        assert payload["engine"] == "parallel"
        assert payload["no_fallback"] is True
        assert payload["engine_options"]["root_range"] == [0, 5]
        assert payload["idempotency_key"].startswith("slice:")

    def test_split_halves_and_atomic_slices_refuse(self):
        children = self._spec(lo=2, hi=7).split()
        assert [(c.lo, c.hi) for c in children] == [(2, 4), (4, 7)]
        assert [c.slice_id for c in children] == ["s0.0", "s0.1"]
        assert self._spec(lo=2, hi=3).split() == []

    def test_plan_slices_ids_and_coverage(self):
        g = _graph()
        slices = plan_slices(g, 4, {"edges": EDGES})
        n = len(addressable_roots(g))
        assert slices[0].slice_id == "s0000"
        assert slices[0].lo == 0 and slices[-1].hi == n
        assert all(s.n_roots == n for s in slices)


# --------------------------------------------------------------------------
# the exactly-once arbiter


class TestRangeCoverage:
    def test_accepts_disjoint_rejects_overlap(self):
        cov = RangeCoverage(10)
        assert cov.add(0, 4)
        assert cov.add(6, 10)
        assert not cov.add(3, 7)  # straddles an accepted range
        assert not cov.add(0, 4)  # exact duplicate
        assert cov.add(4, 6)
        assert cov.complete

    def test_missing_reports_gaps_in_order(self):
        cov = RangeCoverage(10)
        cov.add(2, 4)
        cov.add(7, 9)
        assert cov.missing() == [(0, 2), (4, 7), (9, 10)]
        assert not cov.complete and cov.covered == 4

    def test_rejection_leaves_state_untouched(self):
        cov = RangeCoverage(10)
        cov.add(0, 5)
        assert not cov.add(4, 10)
        assert cov.missing() == [(5, 10)]

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            RangeCoverage(5).add(0, 6)


# --------------------------------------------------------------------------
# coordinator journal


class TestClusterJournal:
    def test_plan_and_event_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = ClusterJournal(path)
        j.record_plan("fp", 10, [{"slice_id": "s0"}])
        j.record_slice("dispatched", "s0", worker="w", job_id="j1")
        j.record_slice("completed", "s0", count=3)
        j.record_terminal("done", count=3)
        j.close()
        plan, events = load_cluster_journal(path)
        assert plan["fingerprint"] == "fp" and plan["n_roots"] == 10
        assert [e["event"] for e in events] == [
            "dispatched", "completed", "done",
        ]

    def test_torn_tail_dropped_and_appends_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = ClusterJournal(path)
        j.record_plan("fp", 10, [])
        j.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"slice","event":"comp')  # torn write
        j2 = ClusterJournal(path)
        assert j2.recovered_plan["fingerprint"] == "fp"
        assert j2.recovered_events == []
        j2.record_slice("dispatched", "s0")
        j2.close()
        _, events = load_cluster_journal(path)
        assert [e["event"] for e in events] == ["dispatched"]

    def test_midfile_corruption_raises_with_location(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('not json\n{"type":"cluster","event":"done"}\n')
        with pytest.raises(ClusterJournalError, match=r":1:"):
            load_cluster_journal(path)

    def test_duplicate_plan_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = ClusterJournal(path)
        j.record_plan("fp", 1, [])
        j.record_plan("fp", 1, [])
        j.close()
        with pytest.raises(ClusterJournalError, match="second 'planned'"):
            load_cluster_journal(path)


# --------------------------------------------------------------------------
# worker-side federation surface (in-process HTTP)


def _start_http_service(tmp_path, name, **cfg):
    cfg.setdefault("workers", 1)
    service = EnumerationService(
        ServiceConfig(state_dir=str(tmp_path / name), **cfg)
    )
    service.start()
    httpd = make_http_server(service)
    threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    ).start()
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    return service, httpd, url


class TestWorkerSliceSurface:
    def test_slice_submission_runs_and_registers(self, tmp_path):
        service, httpd, _url = _start_http_service(tmp_path, "w")
        try:
            g = BipartiteGraph([tuple(e) for e in EDGES])
            spec = plan_slices(g, 1, {"edges": EDGES})[0]
            job, dedup = service.submit_slice({
                "slice": spec.as_dict(), "coordinator": "c-test",
            })
            assert not dedup
            deadline = time.monotonic() + 20
            while service.status(job.job_id)["state"] not in (
                "done", "failed",
            ):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            payload = service.result(job.job_id)
            assert payload["state"] == "done"
            assert payload["summary"]["engine"] == "parallel"
            info = service.cluster_info()
            assert "c-test" in info["coordinators"]
            assert info["slices"][0]["job_id"] == job.job_id
            # redelivery (same fingerprint, same attempt) deduplicates
            again, dedup2 = service.submit_slice({
                "slice": spec.as_dict(), "coordinator": "c-test",
            })
            assert dedup2 and again.job_id == job.job_id
        finally:
            httpd.shutdown()
            service.drain(timeout=2)

    def test_slice_root_count_cached_across_submissions(self, tmp_path):
        """Redelivered slices must not re-read and re-order the graph
        inside the handler: the root count is served from cache."""
        service, httpd, _url = _start_http_service(tmp_path, "w")
        try:
            g = _graph()
            gpath = tmp_path / "g.txt"
            write_edge_list(g, gpath)
            spec = plan_slices(g, 1, {"graph_path": str(gpath)})[0]
            job, dedup = service.submit_slice({"slice": spec.as_dict()})
            assert not dedup
            roots_entries = [
                e for e in service.store.entries() if e.kind == "roots"
            ]
            assert len(roots_entries) == 1
            job_spec = JobSpec.from_dict(spec.to_job_payload())
            cached_graph, cached_key = service._resolve_graph(job_spec)
            # redelivery must answer the root count from the artifact
            # store, never by re-ordering the graph
            import repro.core.parallel as parallel_mod

            def boom(*args, **kwargs):  # pragma: no cover - guard
                raise AssertionError("roots recomputed on redelivery")

            real = parallel_mod.addressable_roots
            parallel_mod.addressable_roots = boom
            try:
                again, dedup2 = service.submit_slice({"slice": spec.as_dict()})
            finally:
                parallel_mod.addressable_roots = real
            assert dedup2 and again.job_id == job.job_id
            assert len([
                e for e in service.store.entries() if e.kind == "roots"
            ]) == 1
            # the resolved graph itself is shared, not re-parsed
            assert service._resolve_graph(job_spec)[0] is cached_graph
            assert service._resolve_graph(job_spec)[1] == cached_key
        finally:
            httpd.shutdown()
            service.drain(timeout=2)

    def test_root_space_mismatch_is_permanent_400(self, tmp_path):
        service, httpd, _url = _start_http_service(tmp_path, "w")
        try:
            g = BipartiteGraph([tuple(e) for e in EDGES])
            spec = plan_slices(g, 1, {"edges": EDGES})[0]
            bad = SliceSpec.from_dict(
                {**spec.as_dict(), "n_roots": spec.n_roots + 1,
                 "hi": spec.n_roots + 1}
            )
            with pytest.raises(JobValidationError, match="root space"):
                service.submit_slice({"slice": bad.as_dict()})
        finally:
            httpd.shutdown()
            service.drain(timeout=2)

    def test_graph_content_mismatch_is_permanent_400(self, tmp_path):
        """A slice planned against different graph *content* is refused
        even when the root-space count happens to collide."""
        from repro.artifacts import graph_key
        from repro.obs.sinks import prometheus_text

        service, httpd, _url = _start_http_service(tmp_path, "w")
        try:
            g = BipartiteGraph([tuple(e) for e in EDGES])
            spec = plan_slices(
                g, 1, {"edges": EDGES}, graph_key=graph_key(g)
            )[0]
            # the honest key is accepted
            job, dedup = service.submit_slice({"slice": spec.as_dict()})
            assert not dedup and job.job_id
            bad = SliceSpec.from_dict(
                {**spec.as_dict(), "graph_key": "0" * 64}
            )
            with pytest.raises(
                JobValidationError, match="graph content mismatch"
            ):
                service.submit_slice({"slice": bad.as_dict()})
            samples = parse_prometheus_text(
                prometheus_text(service.registry)
            )
            assert samples[
                'serve_slices_total{event="graph_mismatch"}'
            ] == 1.0
            # a legacy slice with no key is accepted (old journals)
            legacy = SliceSpec.from_dict(
                {**spec.as_dict(), "graph_key": None, "lo": 0}
            )
            job2, dedup2 = service.submit_slice({"slice": legacy.as_dict()})
            assert job2.job_id
        finally:
            httpd.shutdown()
            service.drain(timeout=2)

    def test_no_fallback_failure_is_structured_not_masked(self, tmp_path):
        # a no_fallback job whose engine fails must fail with the
        # structured exhaustion report — never fall back to an engine
        # that would enumerate the whole graph into a slice result
        service, httpd, _url = _start_http_service(tmp_path, "w")
        try:
            job, _ = service.submit({
                "engine": "parallel", "edges": EDGES, "no_fallback": True,
                "engine_options": {"workers": 1, "root_range": [0, 2],
                                   "bound_size": "garbage"},
            })
            deadline = time.monotonic() + 20
            while service.status(job.job_id)["state"] not in (
                "done", "failed",
            ):
                assert time.monotonic() < deadline
                time.sleep(0.01)
            payload = service.result(job.job_id)
            assert payload["state"] == "failed"
            assert payload["summary"]["error_kind"] == "fallback_exhausted"
            assert payload["summary"]["engines_tried"] == ["parallel"]
            assert payload["summary"]["no_fallback"] is True
        finally:
            httpd.shutdown()
            service.drain(timeout=2)


# --------------------------------------------------------------------------
# coordinator against in-process workers (no subprocesses: fast paths)


class TestCoordinatorInProcess:
    def _run(self, tmp_path, graph, n_workers=2, source=None, **cfg):
        services = []
        try:
            for i in range(n_workers):
                services.append(_start_http_service(tmp_path, f"w{i}"))
            gpath = tmp_path / "g.txt"
            write_edge_list(graph, gpath)
            config = ClusterConfig(
                state_dir=str(tmp_path / "coord"),
                workers=[s[2] for s in services],
                **cfg,
            )
            coord = ClusterCoordinator(config)
            result = coord.run(source or {"graph_path": str(gpath)})
            coord.close()
            return coord, result
        finally:
            for service, httpd, _url in services:
                httpd.shutdown()
                service.drain(timeout=2)

    def test_two_workers_merge_exactly(self, tmp_path):
        g = _graph()
        coord, result = self._run(tmp_path, g, n_slices=4)
        assert result.complete
        assert result.biclique_set() == _truth(g)
        samples = parse_prometheus_text(coord.metrics_text())
        assert samples['cluster_slices_total{event="completed"}'] == 4
        assert samples["cluster_workers_alive"] == 2

    def test_single_worker_single_slice(self, tmp_path):
        g = _graph(seed=5, noise=20)
        _, result = self._run(tmp_path, g, n_workers=1, n_slices=1)
        assert result.complete and result.biclique_set() == _truth(g)

    def test_unreachable_worker_from_the_start_fails_cleanly(self, tmp_path):
        g = _graph()
        gpath = tmp_path / "g.txt"
        write_edge_list(g, gpath)
        config = ClusterConfig(
            state_dir=str(tmp_path / "coord"),
            workers=["http://127.0.0.1:9"],  # discard port: refused
            all_dead_timeout=1.0,
            heartbeat_interval=0.1,
        )
        coord = ClusterCoordinator(config)
        result = coord.run({"graph_path": str(gpath)})
        coord.close()
        assert not result.complete
        assert result.meta["stopped"] == "workers_lost"
        assert result.meta["missing_ranges"]

    def test_journal_fingerprint_mismatch_refuses_state_dir(self, tmp_path):
        from repro.cluster.coordinator import ClusterError

        g = _graph()
        coord, result = self._run(tmp_path, g, n_workers=1, n_slices=2)
        assert result.complete
        other = _graph(seed=9)
        gpath = tmp_path / "other.txt"
        write_edge_list(other, gpath)
        config = ClusterConfig(
            state_dir=str(tmp_path / "coord"),  # reused state dir
            workers=["http://127.0.0.1:9"],
        )
        coord2 = ClusterCoordinator(config)
        with pytest.raises(ClusterError, match="different job"):
            coord2.run({"graph_path": str(gpath)})
        coord2.close()


# --------------------------------------------------------------------------
# restart replay bookkeeping (unit-level: no live run needed)


class TestReplayBookkeeping:
    URL = "http://127.0.0.1:9"

    def _plan_only(self, tmp_path, source, workers, **cfg):
        """A coordinator with its plan loaded but `run` never entered."""
        cfg.setdefault("n_slices", 2)
        coord = ClusterCoordinator(ClusterConfig(
            state_dir=str(tmp_path / "coord"), workers=workers, **cfg,
        ))
        coord._plan(coord._load_graph(source), source)
        return coord

    def test_planned_slices_carry_the_graph_content_hash(self, tmp_path):
        from repro.artifacts import graph_key

        source = self._source(tmp_path)
        coord = self._plan_only(tmp_path, source, [self.URL])
        try:
            g = coord._load_graph(source)
            expected = graph_key(g)
            assert coord._slices
            for state in coord._slices.values():
                assert state.spec.graph_key == expected
        finally:
            coord.close()

    def _source(self, tmp_path):
        gpath = tmp_path / "g.txt"
        write_edge_list(_graph(), gpath)
        return {"graph_path": str(gpath)}

    def test_replayed_inflight_slice_joins_worker_inflight_set(
        self, tmp_path
    ):
        """An inflight slice must re-attach into its worker's inflight
        set on restart, so `_mark_dead` can reclaim it if that worker
        never comes back (the fix for the stuck-forever resume)."""
        source = self._source(tmp_path)
        coord = self._plan_only(tmp_path, source, [self.URL])
        sid = sorted(coord._slices)[0]
        coord.journal.record_slice(
            "dispatched", sid, worker=self.URL, job_id="j-zombie", attempt=1
        )
        coord.close()

        coord2 = self._plan_only(tmp_path, source, [self.URL])
        state = coord2._slices[sid]
        assert state.status == "inflight"
        assert sid in coord2._workers[self.URL].inflight
        # declaring the old owner dead now demotes the slice for
        # reassignment instead of leaving it inflight forever
        coord2._mark_dead(coord2._workers[self.URL], "never came back")
        assert state.status == "pending"
        assert not coord2._workers[self.URL].inflight
        coord2.close()

    def test_replayed_inflight_slice_of_unconfigured_worker_goes_pending(
        self, tmp_path
    ):
        source = self._source(tmp_path)
        coord = self._plan_only(tmp_path, source, [self.URL])
        sid = sorted(coord._slices)[0]
        coord.journal.record_slice(
            "dispatched", sid, worker=self.URL, job_id="j-old", attempt=1
        )
        coord.close()

        other = "http://127.0.0.1:10"
        coord2 = self._plan_only(tmp_path, source, [other])
        state = coord2._slices[sid]
        assert state.status == "pending"
        assert state.worker is None and state.job_id is None
        assert not coord2._workers[other].inflight
        coord2.close()

    def test_replayed_resplit_pins_inflight_parent(self, tmp_path):
        """A parent that was in-flight at crash time resumes with
        resplit=True so it is never split a second time, and a repeat
        `_resplit` call never clobbers existing child progress."""
        source = self._source(tmp_path)
        coord = self._plan_only(tmp_path, source, [self.URL])
        sid = sorted(coord._slices)[0]
        children = coord._slices[sid].spec.split()
        assert children
        coord.journal.record_slice(
            "dispatched", sid, worker=self.URL, job_id="j-1", attempt=1
        )
        coord.journal.record_slice(
            "resplit", sid, children=[c.as_dict() for c in children]
        )
        coord.close()

        coord2 = self._plan_only(tmp_path, source, [self.URL])
        parent = coord2._slices[sid]
        assert parent.status == "inflight" and parent.resplit is True
        for child in children:
            assert coord2._slices[child.slice_id].status == "pending"
        # even a forced re-split leaves existing child states alone
        coord2._slices[children[0].slice_id].status = "completed"
        coord2._resplit(parent, reason="forced again")
        assert coord2._slices[children[0].slice_id].status == "completed"
        coord2.close()

    def test_failed_resplit_retires_parent(self, tmp_path):
        """After a terminal worker-job failure triggers a re-split, the
        parent must not stay inflight: its job is dead, so only the
        children should run the range."""
        from repro.cluster.coordinator import _SliceState

        source = self._source(tmp_path)
        coord = self._plan_only(tmp_path, source, [self.URL])
        spec = SliceSpec(slice_id="sX", lo=0, hi=4, n_roots=8, edges=EDGES)
        state = _SliceState(spec=spec, status="inflight", attempts=2)
        coord._slices[spec.slice_id] = state
        coord._slice_failed(state, "worker job failed: boom")
        assert state.status == "superseded"
        child_states = [
            coord._slices[c.slice_id] for c in spec.split()
        ]
        assert child_states
        assert all(c.status == "pending" for c in child_states)
        coord.close()

    def test_restart_reassigns_slice_of_permanently_dead_worker(
        self, tmp_path
    ):
        """End-to-end regression: the journal says a slice is inflight
        on a worker that never comes back after the coordinator
        restarts; the run must still complete via the healthy peer."""
        g = _graph(seed=5, noise=20)
        gpath = tmp_path / "g.txt"
        write_edge_list(g, gpath)
        source = {"graph_path": str(gpath)}
        coord = self._plan_only(tmp_path, source, [self.URL])
        sid = sorted(coord._slices)[0]
        coord.journal.record_slice(
            "dispatched", sid, worker=self.URL, job_id="j-zombie", attempt=1
        )
        coord.close()

        service, httpd, live_url = _start_http_service(tmp_path, "w-live")
        try:
            coord2 = ClusterCoordinator(ClusterConfig(
                state_dir=str(tmp_path / "coord"),
                workers=[live_url, self.URL],
                n_slices=2,
                heartbeat_interval=0.1,
                heartbeat_timeout=0.5,
                poll_interval=0.02,
                time_limit=60.0,
            ))
            result = coord2.run(source)
            coord2.close()
        finally:
            httpd.shutdown()
            service.drain(timeout=2)
        assert result.complete, result.meta
        assert result.biclique_set() == _truth(g)
        assert result.meta["workers"][self.URL] == "dead"
        samples = parse_prometheus_text(coord2.metrics_text())
        assert samples["cluster_reassignments_total"] >= 1


# --------------------------------------------------------------------------
# per-slice retry budget


class TestSliceRetryBudget:
    URL = "http://127.0.0.1:9"

    def _plan_only(self, tmp_path, source, workers, **cfg):
        cfg.setdefault("n_slices", 2)
        coord = ClusterCoordinator(ClusterConfig(
            state_dir=str(tmp_path / "coord"), workers=workers, **cfg,
        ))
        coord._plan(coord._load_graph(source), source)
        return coord

    def _source(self, tmp_path):
        gpath = tmp_path / "g.txt"
        write_edge_list(_graph(), gpath)
        return {"graph_path": str(gpath)}

    def test_worker_loss_spends_the_budget_instead_of_retrying_forever(
        self, tmp_path
    ):
        """A flapping worker used to grant its slices infinite lives:
        `_mark_dead` reset them to pending with no attempt cap.  Now a
        slice over budget is retired with a structured journal record."""
        from repro.cluster.coordinator import _SliceState

        source = self._source(tmp_path)
        coord = self._plan_only(
            tmp_path, source, [self.URL], max_slice_retries=2
        )
        fresh = SliceSpec(slice_id="s-fresh", lo=0, hi=2, n_roots=8,
                          edges=EDGES)
        spent = SliceSpec(slice_id="s-spent", lo=2, hi=4, n_roots=8,
                          edges=EDGES)
        coord._slices["s-fresh"] = _SliceState(
            spec=fresh, status="inflight", attempts=1, worker=self.URL
        )
        coord._slices["s-spent"] = _SliceState(
            spec=spent, status="inflight", attempts=3, worker=self.URL
        )
        worker = coord._workers[self.URL]
        worker.inflight.update({"s-fresh", "s-spent"})

        coord._mark_dead(worker, "flapping")
        assert coord._slices["s-fresh"].status == "pending"
        assert coord._slices["s-spent"].status == "failed"
        assert "retry budget exhausted" in coord._slices["s-spent"].why
        samples = parse_prometheus_text(coord.metrics_text())
        assert samples["cluster_slices_exhausted_total"] == 1
        coord.close()

        _plan, events = load_cluster_journal(
            os.path.join(str(tmp_path / "coord"), "journal.jsonl")
        )
        exhausted = [
            e for e in events if e.get("event") == "slice_exhausted"
        ]
        assert [e["slice_id"] for e in exhausted] == ["s-spent"]
        assert exhausted[0]["attempts"] == 3
        assert "flapping" in exhausted[0]["why"]
        assert [
            e["slice_id"] for e in events if e.get("event") == "lost"
        ] == ["s-fresh"]

    def test_exhausted_verdict_survives_a_coordinator_restart(
        self, tmp_path
    ):
        """Replay must not hand a retired slice a fresh set of lives."""
        source = self._source(tmp_path)
        coord = self._plan_only(tmp_path, source, [self.URL])
        sid = sorted(coord._slices)[0]
        coord.journal.record_slice(
            "dispatched", sid, worker=self.URL, job_id="j-1", attempt=1
        )
        coord.journal.record_slice(
            "slice_exhausted", sid, attempts=5,
            why="worker lost: flapping",
        )
        coord.close()

        coord2 = self._plan_only(tmp_path, source, [self.URL])
        state = coord2._slices[sid]
        assert state.status == "failed"
        assert "retry budget exhausted" in (state.why or "")
        assert sid not in coord2._workers[self.URL].inflight
        coord2.close()


# --------------------------------------------------------------------------
# chaos: real worker processes, real kills


def _boot_worker(state_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    port_file = os.path.join(str(state_dir), "serve.port")
    if os.path.exists(port_file):
        os.remove(port_file)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--port", "0", *extra],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(f"worker died on boot: {proc.stdout.read()}")
        if os.path.exists(port_file):
            text = open(port_file).read().strip()
            if text:
                return proc, f"http://127.0.0.1:{int(text)}"
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("worker never wrote its port file")


class TestClusterChaos:
    def test_sigkill_worker_mid_job_reassigns_and_merges_exactly(
        self, tmp_path
    ):
        """Acceptance scenario 1: SIGKILL one of two workers while it
        holds a slice; the coordinator declares it dead, reassigns, and
        the merged result equals the single-node reference exactly."""
        graph = planted_bicliques(24, 24, 5, noise_edges=40, seed=3)
        gpath = tmp_path / "graph.txt"
        write_edge_list(graph, gpath)
        truth = _truth(graph)

        procs, urls = [], []
        for i in range(2):
            proc, url = _boot_worker(tmp_path / f"w{i}", "--workers", "1",
                                     "--allow-faults")
            procs.append(proc)
            urls.append(url)
        config = ClusterConfig(
            state_dir=str(tmp_path / "coord"),
            workers=urls,
            n_slices=6,
            heartbeat_interval=0.15,
            heartbeat_timeout=1.0,
            poll_interval=0.02,
            time_limit=120.0,
            # every root's task sleeps, so the victim is reliably
            # mid-slice when the kill lands
            faults={"slow_rate": 1.0, "slow_seconds": 0.25},
        )
        coord = ClusterCoordinator(config)
        victim = procs[0]
        journal_path = coord.journal.path

        def _assassin():
            # wait until the victim worker owns a dispatched slice
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    text = open(journal_path, encoding="utf-8").read()
                except FileNotFoundError:
                    text = ""
                if f'"worker":"{urls[0]}"' in text and \
                        '"event":"dispatched"' in text:
                    break
                time.sleep(0.02)
            time.sleep(0.4)  # let the slice get genuinely mid-flight
            victim.kill()  # SIGKILL: no drain, no goodbye

        assassin = threading.Thread(target=_assassin, daemon=True)
        assassin.start()
        try:
            result = coord.run({"graph_path": str(gpath)})
        finally:
            coord.close()
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=10)
        assassin.join(timeout=10)
        assert victim.poll() is not None  # the kill really happened
        assert result.complete, result.meta
        got = result.biclique_set()
        assert len(result.bicliques) == len(got)  # no duplicates
        assert got == truth  # the exact biclique set
        assert result.meta["workers"][urls[0]] == "dead"
        samples = parse_prometheus_text(coord.metrics_text())
        assert samples["cluster_worker_deaths_total"] >= 1
        assert samples["cluster_reassignments_total"] >= 1

    def test_kill9_coordinator_restart_resumes_completed_slices(
        self, tmp_path
    ):
        """Acceptance scenario 2: kill -9 the coordinator once some
        slices finished; a restart against the same state dir replays
        the journal, re-loads their spooled results, and only dispatches
        the unfinished remainder."""
        graph = planted_bicliques(24, 24, 5, noise_edges=40, seed=3)
        gpath = tmp_path / "graph.txt"
        write_edge_list(graph, gpath)
        truth = _truth(graph)

        worker_proc, url = _boot_worker(tmp_path / "w0", "--workers", "1",
                                        "--allow-faults")
        state_dir = tmp_path / "coord"
        script = (
            "import sys\n"
            "from repro.cluster import ClusterConfig, ClusterCoordinator\n"
            "config = ClusterConfig(\n"
            f"    state_dir={str(state_dir)!r},\n"
            f"    workers=[{url!r}],\n"
            "    n_slices=6, poll_interval=0.02,\n"
            "    heartbeat_interval=0.15, heartbeat_timeout=2.0,\n"
            "    faults={'slow_rate': 1.0, 'slow_seconds': 0.2},\n"
            ")\n"
            "coord = ClusterCoordinator(config)\n"
            f"result = coord.run({{'graph_path': {str(gpath)!r}}})\n"
            "sys.exit(0 if result.complete else 1)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO_ROOT, "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        first = subprocess.Popen(
            [sys.executable, "-c", script], cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        journal_path = os.path.join(str(state_dir), "journal.jsonl")
        try:
            # wait until at least one slice completed but the job has not
            deadline = time.monotonic() + 90
            killed = False
            while time.monotonic() < deadline:
                if first.poll() is not None:
                    raise AssertionError(
                        "first coordinator finished before the kill: "
                        + first.stdout.read()
                    )
                try:
                    text = open(journal_path, encoding="utf-8").read()
                except FileNotFoundError:
                    text = ""
                completed = text.count('"event":"completed"')
                if completed >= 1 and '"event":"done"' not in text:
                    first.kill()  # SIGKILL mid-run
                    killed = True
                    break
                time.sleep(0.02)
            assert killed, "never caught the coordinator mid-run"
            first.wait(timeout=10)

            pre = open(journal_path, encoding="utf-8").read()
            completed_before = {
                json.loads(line)["slice_id"]
                for line in pre.splitlines()
                if line.strip() and json.loads(line).get("event")
                == "completed"
            }
            assert completed_before

            # restart in-process against the same state dir
            config = ClusterConfig(
                state_dir=str(state_dir),
                workers=[url],
                n_slices=6,
                poll_interval=0.02,
                heartbeat_interval=0.15,
                heartbeat_timeout=2.0,
                faults={"slow_rate": 1.0, "slow_seconds": 0.2},
            )
            coord = ClusterCoordinator(config)
            assert coord.journal.recovered_plan is not None
            result = coord.run({"graph_path": str(gpath)})
            coord.close()
            assert result.complete, result.meta
            assert result.biclique_set() == truth
            samples = parse_prometheus_text(coord.metrics_text())
            assert samples["cluster_slices_resumed_total"] >= len(
                completed_before
            )
            # nothing finished pre-crash was dispatched again: every
            # post-restart dispatch targets a not-yet-completed slice
            post = open(journal_path, encoding="utf-8").read()
            new_part = post[len(pre):]
            for line in new_part.splitlines():
                if not line.strip():
                    continue
                rec = json.loads(line)
                if rec.get("event") == "dispatched":
                    assert rec["slice_id"] not in completed_before
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=10)
            worker_proc.kill()
            worker_proc.wait(timeout=10)
