"""The example programs must run clean end to end (their asserts are the test)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_roster():
    assert EXAMPLES == [
        "fraud_detection.py",
        "gene_expression.py",
        "market_summary.py",
        "quickstart.py",
        "recommendation.py",
        "streaming_monitor.py",
    ]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_quickstart_output_names_the_result():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "6 maximal bicliques" in proc.stdout
    assert "verified" in proc.stdout
