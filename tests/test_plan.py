"""Tests for the cost-model planner (src/repro/plan).

Pinned here, mirroring docs/planning.md:

* feature extraction matches the stats/components the bigraph layer
  computes, and the persisted feature cache hits on repeat planning;
* the cost model's calibrated coefficients rank the mbet family ahead
  of the pivot baselines on zoo-scale features, and the analytic seed
  covers engines the calibration never measured;
* golden plans: on zoo graphs the chosen engine is one the crossover
  matrix actually measured as competitive;
* plan mechanics: threshold-incapable engines are ineligible when the
  job sets thresholds, open breakers demote without disqualifying,
  tiny graphs rank by pool preference, parallel needs cores and
  enough predicted serial work;
* the ``repro plan`` CLI prints the chosen configuration, ``--explain``
  lists every candidate with a status and reasons, ``--json`` emits the
  machine-readable plan;
* ``repro run`` without ``--algorithm`` executes the planner's choice,
  and an explicit ``--algorithm`` opts out.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.artifacts import ArtifactStore, kinds
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.stats import compute_stats
from repro.cli import main
from repro.core.base import run_mbe
from repro.plan import (
    DEFAULT_COEFFICIENTS,
    PLANNER_ENGINES,
    CostModel,
    PlanError,
    build_plan,
    cached_features,
    estimate_cost,
    extract_features,
    fit_coefficients,
    recommend_slices,
    recommend_straggler_factor,
    root_cost_estimates,
)
from repro.plan.features import FEATURES_VERSION, PlanFeatures
from tests.conftest import make_g0


def _zoo_features(**overrides) -> PlanFeatures:
    """A zoo-scale feature row (the wc dataset's actual signature)."""
    base = dict(
        n_u=2239, n_v=2239, n_edges=17858, density=0.003562,
        max_degree_u=294, max_degree_v=294, avg_degree=7.976,
        degree_skew=36.86, max_two_hop=1519, cost=27126302,
        n_components=1, largest_component_frac=1.0,
    )
    base.update(overrides)
    return PlanFeatures(**base)


# --------------------------------------------------------------------------
# features


class TestFeatures:
    def test_extract_matches_stats_layer(self, g0):
        feats = extract_features(g0)
        stats = compute_stats(g0)
        assert feats.n_u == g0.n_u and feats.n_v == g0.n_v
        assert feats.n_edges == g0.n_edges
        assert feats.max_two_hop == max(
            stats.max_two_hop_u, stats.max_two_hop_v
        )
        assert feats.cost == estimate_cost(g0)
        assert feats.n_components == 1
        assert feats.largest_component_frac == 1.0

    def test_round_trip_ignores_unknown_fields(self, g0):
        feats = extract_features(g0)
        payload = feats.as_dict()
        payload["future_field"] = 42
        assert PlanFeatures.from_dict(payload) == feats

    def test_cached_features_hit_and_miss(self, tmp_path, g0):
        store = ArtifactStore(tmp_path / "store")
        gk = kinds.graph_key(g0)
        cold = cached_features(store, gk, g0)
        warm = cached_features(store, gk, g0)
        assert cold == warm == extract_features(g0)
        entries = [e for e in store.entries() if e.kind == "plan_features"]
        assert len(entries) == 1
        assert entries[0].fingerprint == FEATURES_VERSION

    def test_feature_cache_version_is_part_of_the_key(self, tmp_path, g0):
        store = ArtifactStore(tmp_path / "store")
        gk = kinds.graph_key(g0)
        cached_features(store, gk, g0)
        # a row stored under another version must not answer this one
        assert store.get(gk, "plan_features", "v0-obsolete") is None
        assert store.get(gk, "plan_features", FEATURES_VERSION) is not None


# --------------------------------------------------------------------------
# cost model


class TestCostModel:
    def test_calibrated_engines_cover_the_serial_pool(self):
        serial = [e for e in PLANNER_ENGINES if e != "parallel"]
        assert set(DEFAULT_COEFFICIENTS) == set(serial)

    def test_zoo_scale_ranking_prefers_mbet_family(self):
        model = CostModel(n_cores=1)
        feats = _zoo_features()
        preds = {
            e: model.predict_seconds(e, feats)
            for e in DEFAULT_COEFFICIENTS
        }
        fastest3 = sorted(preds, key=preds.get)[:3]
        assert set(fastest3) <= {"mbet", "mbet_iter", "mbetm", "mbet_vec"}
        assert preds["mbea"] > preds["mbet"]

    def test_uncalibrated_engine_scored_by_analytic_seed(self):
        model = CostModel({}, n_cores=1)
        feats = _zoo_features()
        got = model.predict_seconds("never_measured", feats)
        assert got == pytest.approx(
            5e-8 * math.expm1(math.log1p(feats.cost)), rel=1e-6
        )

    def test_parallel_prediction_needs_cores_to_win(self):
        feats = _zoo_features()
        solo = CostModel(n_cores=1)
        pooled = CostModel(n_cores=8)
        assert pooled.predict_seconds("parallel", feats) < \
            solo.predict_seconds("parallel", feats)
        # overhead floor: parallel never predicts below the dispatch cost
        assert pooled.predict_seconds("parallel", feats) > 0.35

    def test_fit_recovers_a_planted_model(self):
        # synthesize elapsed times from a known coefficient vector and
        # check the ridge fit lands on it
        planted = (-10.0, 0.5, 0.7, 0.4, 30.0, -1.0)
        records = []
        for scale in range(1, 30):
            # decorrelate the basis columns so the planted vector is
            # identifiable (not shrunk toward the ridge seed)
            feats = _zoo_features(
                n_edges=1000 * scale,
                cost=100_000 * ((scale * 7) % 29 + 1),
                degree_skew=1.0 + ((scale * 11) % 17),
                density=0.01 + 0.04 * ((scale * 5) % 13),
                max_two_hop=100 + 50 * ((scale * 3) % 23),
            )
            from repro.plan.model import feature_basis

            log_t = sum(
                c * x for c, x in zip(planted, feature_basis(feats))
            )
            records.append({
                "engine": "synthetic", "elapsed": math.exp(log_t),
                "complete": True, "features": feats.as_dict(),
            })
        got = fit_coefficients(records)["synthetic"]
        # the ridge term tugs the bias slightly toward the analytic seed
        assert got == pytest.approx(planted, abs=0.2)

    def test_fit_skips_incomplete_rows(self):
        feats = _zoo_features()
        records = [
            {"engine": "e", "elapsed": 15.0, "complete": False,
             "features": feats.as_dict()},
        ]
        assert fit_coefficients(records) == {}


# --------------------------------------------------------------------------
# plans


class TestBuildPlan:
    def test_golden_zoo_plan_picks_a_measured_winner(self):
        # the wc signature: the crossover matrix measured the mbet
        # family 3-10x ahead of the pivot baselines there
        plan = build_plan(features=_zoo_features(), n_cores=1)
        assert plan.chosen.engine in {
            "mbet", "mbet_iter", "mbetm", "mbet_vec"
        }
        assert plan.chosen.ordering == "degree"
        assert plan.budget_seconds >= 5.0
        chain = plan.engine_chain()
        assert chain[0] == plan.chosen.engine
        assert len(chain) == len(set(chain))

    def test_tiny_graph_ranks_by_pool_preference(self, g0):
        plan = build_plan(g0, n_cores=1)
        assert plan.chosen.engine == PLANNER_ENGINES[0]
        assert plan.chosen.ordering == "natural"
        assert any("pool preference" in r for r in plan.chosen.reasons)

    def test_thresholds_reject_incapable_engines(self, g0):
        plan = build_plan(g0, min_left=2, min_right=2, n_cores=1)
        by_engine = {c.engine: c for c in plan.candidates}
        for engine in ("mbea", "imbea", "pmbe", "oombea"):
            assert not by_engine[engine].eligible
            assert "thresholds" in by_engine[engine].reasons[0]
        assert by_engine["mbet"].eligible

    def test_open_breaker_demotes_but_keeps_engine(self):
        feats = _zoo_features()
        clean = build_plan(features=feats, n_cores=1)
        top = clean.chosen.engine
        plan = build_plan(
            features=feats, n_cores=1, breaker_states={top: "open"}
        )
        assert plan.chosen.engine != top
        chain = plan.engine_chain()
        assert top in chain  # demoted, not disqualified
        assert chain.index(top) == len(chain) - 1
        demoted = next(c for c in plan.candidates if c.engine == top)
        assert demoted.demoted
        assert any("breaker" in r for r in demoted.reasons)

    def test_parallel_needs_multiple_cores_and_enough_work(self):
        feats = _zoo_features()
        single = build_plan(features=feats, n_cores=1)
        para = next(
            c for c in single.candidates if c.engine == "parallel"
        )
        assert not para.eligible and "single-core" in para.reasons[0]
        # plenty of cores but the serial estimate is far below the bar
        fast = build_plan(features=feats, n_cores=16)
        para = next(c for c in fast.candidates if c.engine == "parallel")
        assert not para.eligible
        assert "bar" in para.reasons[0]

    def test_parallel_wins_on_heavy_graph_with_cores(self):
        heavy = _zoo_features(
            n_edges=300_000, cost=3_000_000_000, max_two_hop=30_000
        )
        plan = build_plan(features=heavy, n_cores=16)
        para = next(c for c in plan.candidates if c.engine == "parallel")
        assert para.eligible
        assert para.workers == 16

    def test_budget_scales_with_prediction_and_clamps(self):
        small = build_plan(features=_zoo_features(), n_cores=1)
        assert small.budget_seconds == pytest.approx(max(
            5.0, 20.0 * small.chosen.predicted_seconds
        ))
        huge = _zoo_features(
            n_edges=3_000_000, cost=50_000_000_000, max_two_hop=100_000
        )
        assert build_plan(features=huge, n_cores=1).budget_seconds == 600.0

    def test_empty_pool_raises_plan_error(self, g0):
        with pytest.raises(PlanError):
            build_plan(g0, engines=("no_such_engine",))

    def test_explain_lists_every_candidate(self):
        plan = build_plan(features=_zoo_features(), n_cores=1)
        text = plan.explain()
        lines = text.splitlines()
        assert lines[0].startswith("graph")
        assert lines[1].startswith("chosen: engine=")
        assert "budget=" in lines[1] and "predicted=" in lines[1]
        for engine in PLANNER_ENGINES:
            assert any(engine in line for line in lines[3:])
        assert sum("chosen" in line for line in lines[3:]) == 1
        assert any("ineligible" in line for line in lines[3:])

    def test_as_dict_round_trips_through_json(self):
        plan = build_plan(features=_zoo_features(), n_cores=1)
        payload = json.loads(json.dumps(plan.as_dict()))
        assert payload["chosen"]["engine"] == plan.chosen.engine
        assert payload["model_version"] == plan.model_version
        assert len(payload["candidates"]) == len(plan.candidates)

    def test_store_backed_plan_uses_cached_features(self, tmp_path, g0):
        store = ArtifactStore(tmp_path / "store")
        gk = kinds.graph_key(g0)
        first = build_plan(g0, graph_key=gk, store=store)
        assert first.graph_key == gk
        # repeat planning answers from the persisted feature row
        hits_before = [
            e for e in store.entries() if e.kind == "plan_features"
        ]
        assert len(hits_before) == 1
        second = build_plan(g0, graph_key=gk, store=store)
        assert second.features == first.features

    def test_planner_choice_enumerates_exactly(self, g0):
        from tests.conftest import G0_MAXIMAL

        plan = build_plan(g0, n_cores=1)
        got = run_mbe(g0, plan.chosen.engine).biclique_set()
        assert got == G0_MAXIMAL


# --------------------------------------------------------------------------
# calibration acceptance


class TestCrossoverAcceptance:
    def test_choice_within_1_5x_of_best_on_every_zoo_graph(self):
        """The PR's acceptance bound, pinned against the committed
        snapshot: on every zoo graph the crossover matrix measured, the
        planner's chosen engine must have run within 1.5x of the best
        measured engine."""
        import glob
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
        assert paths, "no committed BENCH_*.json snapshot"
        with open(paths[-1]) as handle:
            doc = json.load(handle)
        cells = doc.get("crossover", {}).get("cells", [])
        assert cells, "snapshot carries no crossover matrix"
        by_dataset: dict[str, list[dict]] = {}
        for cell in cells:
            by_dataset.setdefault(cell["dataset"], []).append(cell)
        for dataset, row in by_dataset.items():
            complete = [c for c in row if c["complete"]]
            if not complete:
                continue
            best = min(c["elapsed"] for c in complete)
            measured = {c["engine"]: c for c in row}
            feats = PlanFeatures.from_dict(row[0]["features"])
            plan = build_plan(
                features=feats, n_cores=1,
                engines=tuple(measured),
            )
            cell = measured[plan.chosen.engine]
            assert cell["complete"], (
                f"{dataset}: planner chose {plan.chosen.engine}, which "
                f"timed out in the crossover matrix"
            )
            assert cell["elapsed"] <= 1.5 * best, (
                f"{dataset}: {plan.chosen.engine} ran {cell['elapsed']:.2f}s"
                f" vs best {best:.2f}s (> 1.5x)"
            )


# --------------------------------------------------------------------------
# cluster-facing estimates


class TestClusterEstimates:
    def test_root_cost_estimates_cover_addressable_roots(self):
        g = make_g0()
        from repro.core.parallel import addressable_roots

        estimates = root_cost_estimates(g)
        assert len(estimates) == len(addressable_roots(g, "degree", seed=0))
        assert all(e >= 0 for e in estimates)

    def test_recommend_slices_baseline_and_skew(self):
        flat = [10] * 40
        assert recommend_slices(3, flat) == 6  # 2 x workers
        skewed = [1] * 39 + [1000]
        assert recommend_slices(3, skewed) > 6
        # capped by the root count
        assert recommend_slices(8, [5, 5, 5]) == 3
        assert recommend_slices(2, []) == 4
        with pytest.raises(ValueError):
            recommend_slices(0, flat)

    def test_recommend_straggler_factor_grows_with_skew(self):
        assert recommend_straggler_factor([]) == 4.0
        flat = recommend_straggler_factor([10] * 20)
        skewed = recommend_straggler_factor([1] * 19 + [500])
        assert flat < skewed <= 10.0
        assert flat >= 2.0


# --------------------------------------------------------------------------
# CLI


class TestPlanCli:
    def _graph_file(self, tmp_path):
        from repro.bigraph.io import write_edge_list

        path = tmp_path / "g0.txt"
        write_edge_list(make_g0(), path)
        return str(path)

    def test_plan_prints_chosen_line(self, tmp_path, capsys):
        assert main(["plan", "--input", self._graph_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "engine=" in out and "budget=" in out
        assert "--explain" in out

    def test_plan_explain_prints_candidate_table(self, tmp_path, capsys):
        assert main([
            "plan", "--input", self._graph_file(tmp_path), "--explain"
        ]) == 0
        out = capsys.readouterr().out
        assert "candidates:" in out
        assert "chosen" in out and "ineligible" in out

    def test_plan_json_is_machine_readable(self, tmp_path, capsys):
        assert main([
            "plan", "--input", self._graph_file(tmp_path), "--json"
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["chosen"]["engine"] in PLANNER_ENGINES
        assert isinstance(payload["candidates"], list)

    def test_plan_respects_engine_pool_and_cores(self, tmp_path, capsys):
        assert main([
            "plan", "--input", self._graph_file(tmp_path),
            "--engines", "mbea,pmbe", "--cores", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        engines = {c["engine"] for c in payload["candidates"]}
        assert engines == {"mbea", "pmbe"}
        assert payload["n_cores"] == 1

    def test_plan_unknown_pool_exits_2(self, tmp_path, capsys):
        assert main([
            "plan", "--input", self._graph_file(tmp_path),
            "--engines", "bogus",
        ]) == 2
        assert "no eligible engine" in capsys.readouterr().err

    def test_run_without_algorithm_uses_planner(self, tmp_path, capsys):
        assert main(["run", "--input", self._graph_file(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "planned: engine=" in captured.err
        assert "6 maximal bicliques" in captured.out

    def test_run_explicit_algorithm_skips_planner(self, tmp_path, capsys):
        assert main([
            "run", "--input", self._graph_file(tmp_path),
            "--algorithm", "mbea",
        ]) == 0
        captured = capsys.readouterr()
        assert "planned:" not in captured.err
        assert "mbea" in captured.out
