"""Tests for connected components and per-component enumeration."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro import BipartiteGraph, run_mbe
from repro.bigraph.components import (
    component_subgraphs,
    connected_components,
    run_mbe_per_component,
)
from tests.strategies import bipartite_graphs

RELAXED = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestConnectedComponents:
    def test_single_component(self, g0):
        comps = connected_components(g0)
        assert len(comps) == 1
        assert comps[0] == (list(range(5)), list(range(4)))

    def test_two_components_largest_first(self):
        g = BipartiteGraph([(0, 0), (1, 0), (2, 1), (0, 2)])
        comps = connected_components(g)
        assert comps == [([0, 1], [0, 2]), ([2], [1])]

    def test_isolated_vertices_excluded(self):
        g = BipartiteGraph([(0, 0)], n_u=5, n_v=5)
        assert connected_components(g) == [([0], [0])]

    def test_empty_graph(self):
        assert connected_components(BipartiteGraph([])) == []

    @RELAXED
    @given(g=bipartite_graphs())
    def test_components_partition_active_vertices(self, g):
        comps = connected_components(g)
        seen_u = [u for us, _ in comps for u in us]
        seen_v = [v for _, vs in comps for v in vs]
        assert len(seen_u) == len(set(seen_u))
        assert len(seen_v) == len(set(seen_v))
        assert set(seen_u) == {u for u in range(g.n_u) if g.degree_u(u)}
        assert set(seen_v) == {v for v in range(g.n_v) if g.degree_v(v)}

    @RELAXED
    @given(g=bipartite_graphs())
    def test_no_cross_component_edges(self, g):
        comps = connected_components(g)
        v_home = {}
        for idx, (_, vs) in enumerate(comps):
            for v in vs:
                v_home[v] = idx
        for idx, (us, _) in enumerate(comps):
            for u in us:
                for v in g.neighbors_u(u):
                    assert v_home[v] == idx


class TestComponentSubgraphs:
    def test_edges_partition(self, g0):
        total = sum(sub.n_edges for sub, _, _ in component_subgraphs(g0))
        assert total == g0.n_edges

    def test_back_maps_invert(self):
        g = BipartiteGraph([(3, 5), (7, 5)], n_u=10, n_v=10)
        (sub, back_u, back_v), = list(component_subgraphs(g))
        assert sub.n_edges == 2
        assert sorted(back_u.values()) == [3, 7]
        assert list(back_v.values()) == [5]


class TestPerComponentEnumeration:
    def test_counts_split_by_component(self):
        g = BipartiteGraph([(0, 0), (1, 0), (0, 1), (2, 2), (3, 2)])
        bicliques, per = run_mbe_per_component(g, "mbet")
        assert sum(per) == len(bicliques)
        assert len(per) == 2

    @RELAXED
    @given(g=bipartite_graphs())
    def test_equals_whole_graph_enumeration(self, g):
        whole = run_mbe(g, "mbet").biclique_set()
        split, _ = run_mbe_per_component(g, "mbet")
        assert frozenset(split) == whole
        assert len(split) == len(whole)  # no duplicates across components
