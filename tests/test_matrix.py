"""Tests for biadjacency-matrix and NetworkX interop."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BipartiteGraph,
    from_biadjacency,
    from_networkx,
    run_mbe,
    to_biadjacency,
    to_networkx,
)
from tests.conftest import make_g0


class TestBiadjacency:
    def test_roundtrip(self):
        g = make_g0()
        assert from_biadjacency(to_biadjacency(g)) == g

    def test_nonzero_is_edge(self):
        g = from_biadjacency(np.array([[0.5, 0.0], [2, 3]]))
        assert g.n_edges == 3
        assert not g.has_edge(0, 1)

    def test_bool_matrix(self):
        m = np.zeros((3, 4), dtype=bool)
        m[1, 2] = True
        g = from_biadjacency(m)
        assert (g.n_u, g.n_v, g.n_edges) == (3, 4, 1)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            from_biadjacency(np.zeros(5))
        with pytest.raises(ValueError, match="2-D"):
            from_biadjacency(np.zeros((2, 2, 2)))

    def test_empty_matrix(self):
        g = from_biadjacency(np.zeros((2, 3)))
        assert g.n_edges == 0
        assert (g.n_u, g.n_v) == (2, 3)

    def test_to_biadjacency_dtype(self):
        g = BipartiteGraph([(0, 1)])
        out = to_biadjacency(g, dtype=np.int8)
        assert out.dtype == np.int8
        assert out[0, 1] == 1 and out.sum() == 1

    def test_mbe_on_matrix_input(self):
        # a planted all-ones block is the unique largest biclique
        m = np.zeros((6, 6), dtype=bool)
        m[1:4, 2:5] = True
        result = run_mbe(from_biadjacency(m), "mbet")
        assert result.count == 1
        b = result.bicliques[0]
        assert b.left == (1, 2, 3) and b.right == (2, 3, 4)


class TestNetworkX:
    def test_roundtrip_structure(self):
        g = make_g0()
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == g.n_u + g.n_v
        assert nxg.number_of_edges() == g.n_edges
        back, u_map, v_map = from_networkx(nxg)
        assert back == g
        assert u_map[("u", 0)] == 0
        assert v_map[("v", 3)] == 3

    def test_bipartite_attribute_used(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_node("a", bipartite=0)
        nxg.add_node("x", bipartite=1)
        nxg.add_edge("a", "x")
        g, u_map, _v_map = from_networkx(nxg)
        assert g.n_edges == 1
        assert "a" in u_map

    def test_explicit_u_nodes(self):
        import networkx as nx

        nxg = nx.Graph([("a", "x"), ("b", "x")])
        g, u_map, v_map = from_networkx(nxg, u_nodes=["a", "b"])
        assert g.degree_v(v_map["x"]) == 2

    def test_missing_partition_rejected(self):
        import networkx as nx

        nxg = nx.Graph([("a", "x")])
        with pytest.raises(ValueError, match="bipartite=0"):
            from_networkx(nxg)

    def test_edge_within_partition_rejected(self):
        import networkx as nx

        nxg = nx.Graph([("a", "b"), ("a", "x")])
        with pytest.raises(ValueError, match="not across"):
            from_networkx(nxg, u_nodes=["a", "b"])
