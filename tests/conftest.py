"""Shared fixtures and helpers for the test suite.

``g0`` is the worked example graph of this paper lineage (Fig. 1 of the
set-enumeration exposition): |U| = 5, |V| = 4, six maximal bicliques.  The
``random_bigraph`` helper and the hypothesis strategies in
``tests/strategies.py`` generate the adversarial small graphs the agreement
properties run on.
"""

from __future__ import annotations

import random

import pytest

from repro import BipartiteGraph, Biclique

#: All registered exact algorithms that must agree with brute force.
EXACT_ALGORITHMS = (
    "naive", "mbea", "imbea", "pmbe", "oombea", "mbet", "mbet_iter", "mbet_vec", "mbetm"
)


def make_g0() -> BipartiteGraph:
    """The literature's running example G0 (0-indexed)."""
    edges = [
        (0, 0), (1, 0),                    # v0: {u0, u1}
        (0, 1), (1, 1), (2, 1), (3, 1),    # v1: {u0, u1, u2, u3}
        (0, 2), (1, 2), (3, 2),            # v2: {u0, u1, u3}
        (1, 3), (3, 3), (4, 3),            # v3: {u1, u3, u4}
    ]
    return BipartiteGraph(edges, n_u=5, n_v=4)


#: The six maximal bicliques of G0, as enumerated in the exposition.
G0_MAXIMAL = frozenset(
    {
        Biclique.make([0, 1], [0, 1, 2]),
        Biclique.make([1], [0, 1, 2, 3]),
        Biclique.make([0, 1, 2, 3], [1]),
        Biclique.make([0, 1, 3], [1, 2]),
        Biclique.make([1, 3], [1, 2, 3]),
        Biclique.make([1, 3, 4], [3]),
    }
)


@pytest.fixture
def g0() -> BipartiteGraph:
    return make_g0()


def random_bigraph(
    rng: random.Random, max_side: int = 8, p: float | None = None
) -> BipartiteGraph:
    """A uniform random bipartite graph small enough for brute force."""
    n_u = rng.randint(1, max_side)
    n_v = rng.randint(1, max_side)
    prob = p if p is not None else rng.choice([0.15, 0.3, 0.5, 0.7])
    edges = [
        (u, v) for u in range(n_u) for v in range(n_v) if rng.random() < prob
    ]
    return BipartiteGraph(edges, n_u=n_u, n_v=n_v)
