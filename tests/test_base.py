"""Tests for the enumeration framework (Biclique, stats, registry, run_mbe)."""

from __future__ import annotations

import pytest

from repro import BipartiteGraph, Biclique, run_mbe
from repro.core.base import (
    ALGORITHMS,
    EnumerationLimits,
    EnumerationStats,
    MBEAlgorithm,
    available_algorithms,
    register,
)


class TestBiclique:
    def test_make_canonicalizes(self):
        b = Biclique.make([3, 1], (2, 0))
        assert b.left == (1, 3)
        assert b.right == (0, 2)

    def test_swap(self):
        b = Biclique.make([1], [2, 3])
        assert b.swap() == Biclique.make([2, 3], [1])

    def test_n_edges(self):
        assert Biclique.make([1, 2], [3, 4, 5]).n_edges == 6

    def test_hashable_and_ordered(self):
        a = Biclique.make([1], [1])
        b = Biclique.make([1], [2])
        assert a < b
        assert len({a, b, Biclique.make([1], [1])}) == 2


class TestEnumerationStats:
    def test_starts_at_zero(self):
        stats = EnumerationStats()
        assert all(v == 0 for v in stats.as_dict().values())

    def test_merge_sums_and_maxes(self):
        a, b = EnumerationStats(), EnumerationStats()
        a.nodes, b.nodes = 3, 4
        a.trie_peak_nodes, b.trie_peak_nodes = 10, 7
        a.merge(b)
        assert a.nodes == 7
        assert a.trie_peak_nodes == 10

    def test_repr_shows_nonzero_only(self):
        stats = EnumerationStats()
        stats.nodes = 5
        assert "nodes=5" in repr(stats)
        assert "maximal" not in repr(stats)


class TestLimitsValidation:
    def test_negative_max_rejected(self):
        with pytest.raises(ValueError):
            EnumerationLimits(max_bicliques=-1).validate()

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            EnumerationLimits(time_limit=0).validate()

    def test_defaults_valid(self):
        EnumerationLimits().validate()


class TestRegistry:
    def test_known_algorithms_registered(self):
        for name in ("naive", "mbea", "imbea", "pmbe", "oombea", "mbet",
                     "mbetm", "parallel", "bruteforce"):
            assert name in ALGORITHMS

    def test_available_sorted(self):
        names = available_algorithms()
        assert names == sorted(names)

    def test_duplicate_registration_rejected(self):
        class Dup(MBEAlgorithm):
            name = "mbet"

            def _enumerate(self, graph, report, stats):
                pass

        with pytest.raises(ValueError, match="duplicate"):
            register(Dup)

    def test_unnamed_registration_rejected(self):
        class NoName(MBEAlgorithm):
            def _enumerate(self, graph, report, stats):
                pass

        with pytest.raises(ValueError, match="unique name"):
            register(NoName)


class TestRunMBE:
    def test_unknown_algorithm(self, g0):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_mbe(g0, "no-such-algo")

    def test_collect_false_drops_results(self, g0):
        result = run_mbe(g0, "mbet", collect=False)
        assert result.bicliques is None
        assert result.count == 6
        with pytest.raises(ValueError):
            result.biclique_set()

    def test_result_metadata(self, g0):
        result = run_mbe(g0, "mbea")
        assert result.algorithm == "mbea"
        assert result.complete
        assert result.elapsed >= 0
        assert result.stats.maximal == result.count == 6

    def test_options_forwarded(self, g0):
        result = run_mbe(g0, "mbet", order="random", seed=12)
        assert result.count == 6

    def test_empty_graph(self):
        result = run_mbe(BipartiteGraph([]), "mbet")
        assert result.count == 0
        assert result.bicliques == []

    def test_edgeless_vertices_only(self):
        g = BipartiteGraph([], n_u=4, n_v=4)
        assert run_mbe(g, "mbea").count == 0

    def test_single_edge(self):
        g = BipartiteGraph([(0, 0)])
        result = run_mbe(g, "mbet")
        assert result.biclique_set() == {Biclique.make([0], [0])}

    def test_complete_bipartite_has_one_biclique(self):
        g = BipartiteGraph([(u, v) for u in range(4) for v in range(3)])
        for algo in ("naive", "mbea", "mbet"):
            result = run_mbe(g, algo)
            assert result.biclique_set() == {
                Biclique.make(range(4), range(3))
            }


class TestLimits:
    def test_max_bicliques_stops_early(self, g0):
        result = run_mbe(g0, "mbet", max_bicliques=3)
        assert result.count == 3
        assert not result.complete
        assert len(result.bicliques) == 3

    def test_max_bicliques_zero(self, g0):
        # A zero budget stops at the first report.
        result = run_mbe(g0, "mbet", max_bicliques=0)
        assert not result.complete
        assert result.count <= 1

    def test_generous_limit_completes(self, g0):
        result = run_mbe(g0, "mbet", max_bicliques=1000)
        assert result.complete
        assert result.count == 6

    def test_time_limit_on_large_run(self):
        from repro import planted_bicliques

        g = planted_bicliques(300, 200, 150, (2, 6), (2, 6), 500, seed=3)
        result = run_mbe(g, "naive", collect=False, time_limit=0.05)
        assert not result.complete
        full = run_mbe(g, "mbet", collect=False)
        assert result.count < full.count
