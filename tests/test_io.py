"""Tests for edge-list IO (plain and KONECT formats)."""

from __future__ import annotations

import pytest

from repro import BipartiteGraph, read_edge_list, write_edge_list
from repro.bigraph.io import EdgeListFormatError


@pytest.fixture
def g_small() -> BipartiteGraph:
    return BipartiteGraph([(0, 0), (0, 2), (1, 1), (2, 0)])


class TestPlainFormat:
    def test_roundtrip(self, tmp_path, g_small):
        path = tmp_path / "edges.txt"
        write_edge_list(g_small, path, fmt="plain")
        assert read_edge_list(path, fmt="plain") == g_small

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n0 1\n# mid comment\n1 0\n")
        g = read_edge_list(path)
        assert g.n_edges == 2

    def test_header_lines_written(self, tmp_path, g_small):
        path = tmp_path / "edges.txt"
        write_edge_list(g_small, path, header=["my graph", "second line"])
        text = path.read_text()
        assert text.startswith("# my graph\n# second line\n")

    def test_whitespace_separators(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\t1\n2   3\n")
        g = read_edge_list(path, fmt="plain")
        assert g.has_edge(0, 1) and g.has_edge(2, 3)

    def test_extra_columns_ignored(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1 42 1234567\n")
        assert read_edge_list(path, fmt="plain").n_edges == 1

    def test_duplicate_edges_collapse(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n0 1\n0 1\n")
        assert read_edge_list(path).n_edges == 1


class TestKonectFormat:
    def test_one_based_offset(self, tmp_path):
        path = tmp_path / "out.test"
        path.write_text("% bip unweighted\n1 1\n2 3\n")
        g = read_edge_list(path, fmt="konect")
        assert g.has_edge(0, 0) and g.has_edge(1, 2)

    def test_roundtrip(self, tmp_path, g_small):
        path = tmp_path / "out.roundtrip"
        write_edge_list(g_small, path, fmt="konect", header=["bip"])
        assert read_edge_list(path, fmt="konect") == g_small

    def test_zero_id_underflow_detected(self, tmp_path):
        path = tmp_path / "out.bad"
        path.write_text("0 1\n")
        with pytest.raises(EdgeListFormatError, match="underflow"):
            read_edge_list(path, fmt="konect")


class TestAutoSniffing:
    def test_percent_header_selects_konect(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("% sym\n1 1\n")
        g = read_edge_list(path, fmt="auto")
        assert g.has_edge(0, 0)

    def test_out_prefix_selects_konect(self, tmp_path):
        path = tmp_path / "out.movielens"
        path.write_text("1 2\n")
        g = read_edge_list(path)
        assert g.has_edge(0, 1)

    def test_default_is_plain(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("0 5\n")
        assert read_edge_list(path).has_edge(0, 5)


class TestErrors:
    def test_unknown_format(self, tmp_path, g_small):
        path = tmp_path / "x"
        path.write_text("0 0\n")
        with pytest.raises(ValueError, match="unknown edge-list format"):
            read_edge_list(path, fmt="csv")
        with pytest.raises(ValueError, match="unknown edge-list format"):
            write_edge_list(g_small, path, fmt="csv")

    def test_single_column_line(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("42\n")
        with pytest.raises(EdgeListFormatError, match="two columns"):
            read_edge_list(path, fmt="plain")

    def test_non_integer_id(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("a b\n")
        with pytest.raises(EdgeListFormatError, match="non-integer"):
            read_edge_list(path, fmt="plain")

    def test_error_message_carries_location(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("0 0\nbroken\n")
        with pytest.raises(EdgeListFormatError, match=":2:"):
            read_edge_list(path, fmt="plain")


class TestCorruptFixtures:
    """Every malformed input raises one GraphFormatError with file context."""

    def test_graph_format_error_is_the_edge_list_error(self):
        from repro.bigraph.io import GraphFormatError

        assert EdgeListFormatError is GraphFormatError
        assert issubclass(GraphFormatError, ValueError)

    def test_binary_garbage(self, tmp_path):
        from repro.bigraph.io import GraphFormatError

        path = tmp_path / "x"
        path.write_bytes(b"\x00\xff\xfe binary \x80 soup")
        with pytest.raises(GraphFormatError, match=str(path)):
            read_edge_list(path)

    def test_truncated_mid_token(self, tmp_path):
        from repro.bigraph.io import GraphFormatError

        path = tmp_path / "x"
        path.write_text("0 1\n1 2\n2 3.")  # torn final write
        with pytest.raises(GraphFormatError, match=":3:"):
            read_edge_list(path, fmt="plain")

    def test_negative_id_in_plain(self, tmp_path):
        from repro.bigraph.io import GraphFormatError

        path = tmp_path / "x"
        path.write_text("0 1\n-4 2\n")
        with pytest.raises(GraphFormatError, match="underflow"):
            read_edge_list(path, fmt="plain")

    def test_errors_catchable_as_valueerror(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("nope\n")
        with pytest.raises(ValueError):
            read_edge_list(path, fmt="plain")


class TestGzip:
    """Transparent .gz compression on both the read and write paths."""

    def test_roundtrip_through_gzip(self, tmp_path, g_small):
        path = tmp_path / "edges.txt.gz"
        write_edge_list(g_small, path, fmt="plain")
        assert read_edge_list(path, fmt="plain") == g_small

    def test_written_file_is_actually_gzipped(self, tmp_path, g_small):
        path = tmp_path / "edges.txt.gz"
        write_edge_list(g_small, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic

    def test_konect_roundtrip_through_gzip(self, tmp_path, g_small):
        path = tmp_path / "out.konect.gz"
        write_edge_list(g_small, path, fmt="konect", header=["bip"])
        assert read_edge_list(path, fmt="konect") == g_small

    def test_not_a_gzip_archive_names_the_path(self, tmp_path):
        from repro.bigraph.io import GraphFormatError

        path = tmp_path / "fake.gz"
        path.write_bytes(b"plain text pretending to be gzip")
        with pytest.raises(GraphFormatError, match="fake.gz"):
            read_edge_list(path)

    def test_truncated_archive_reported(self, tmp_path, g_small):
        from repro.bigraph.io import GraphFormatError

        path = tmp_path / "cut.gz"
        write_edge_list(g_small, path)
        path.write_bytes(path.read_bytes()[:-5])  # chop the gzip trailer
        with pytest.raises(GraphFormatError, match="truncated|archive"):
            read_edge_list(path)


class TestCompact:
    def test_compact_drops_gaps(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("10 100\n20 100\n")
        g = read_edge_list(path, compact=True)
        assert (g.n_u, g.n_v) == (2, 1)
