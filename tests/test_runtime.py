"""Tests for the resilient runtime: budgets, faults, checkpoints, executor."""

from __future__ import annotations

import json
import time

import pytest

from repro import BipartiteGraph, run_mbe
from repro.runtime import (
    NULL_GUARD,
    BudgetExceeded,
    Checkpoint,
    CheckpointError,
    CheckpointWriter,
    ExecutionReport,
    FaultPlan,
    InjectedWorkerCrash,
    ResilientExecutor,
    RunBudget,
    load_checkpoint,
    reconcile_tasks,
    task_key,
)


def barren_graph(n_u: int = 40, n_v: int = 1200) -> BipartiteGraph:
    """Every V vertex carries the identical full-U neighborhood.

    Exactly one maximal biclique exists; all but one root is
    containment-pruned, so enumeration spends its whole life inside the
    decomposition without reporting anything — the adversarial input for
    deadline enforcement.
    """
    return BipartiteGraph([(u, v) for v in range(n_v) for u in range(n_u)])


class TestRunBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunBudget(time_limit=0).validate()
        with pytest.raises(ValueError):
            RunBudget(max_bicliques=-1).validate()
        with pytest.raises(ValueError):
            RunBudget(max_nodes=0).validate()
        with pytest.raises(ValueError):
            RunBudget(check_interval=0).validate()

    def test_unbounded(self):
        assert RunBudget().unbounded
        assert not RunBudget(max_nodes=5).unbounded
        assert not RunBudget(cancel=lambda: False).unbounded

    def test_tick_is_amortized(self):
        calls = []
        guard = RunBudget(cancel=lambda: calls.append(1) or False,
                          check_interval=4).arm()
        for _ in range(16):
            guard.tick()
        assert len(calls) == 4  # probed every 4th tick only

    def test_max_nodes_trips(self):
        guard = RunBudget(max_nodes=10, check_interval=1).arm()
        with pytest.raises(BudgetExceeded) as exc:
            for _ in range(100):
                guard.tick()
        assert exc.value.reason == "max_nodes"
        assert guard.reason == "max_nodes"

    def test_deadline_trips_check_now(self):
        guard = RunBudget(time_limit=0.01).arm()
        time.sleep(0.02)
        with pytest.raises(BudgetExceeded) as exc:
            guard.check_now()
        assert exc.value.reason == "time_limit"

    def test_cancel_trips(self):
        guard = RunBudget(cancel=lambda: True).arm()
        with pytest.raises(BudgetExceeded) as exc:
            guard.check_now()
        assert exc.value.reason == "cancelled"

    def test_on_report_enforces_cap_exactly(self):
        guard = RunBudget(max_bicliques=3).arm()
        guard.on_report(1)
        guard.on_report(2)
        with pytest.raises(BudgetExceeded) as exc:
            guard.on_report(3)
        assert exc.value.reason == "max_bicliques"

    def test_null_guard_is_inert(self):
        NULL_GUARD.tick()
        NULL_GUARD.check_now()
        NULL_GUARD.on_report(10**9)
        assert NULL_GUARD.remaining() is None


class TestDeadlineBinding:
    """The acceptance bound: a deadline fires within 2x its value even on
    a graph that never reports a biclique."""

    @pytest.mark.parametrize("algo", ["mbet", "mbet_iter", "mbetm"])
    def test_barren_graph_terminates_within_2x(self, algo):
        g = barren_graph()
        t = 0.3
        start = time.perf_counter()
        result = run_mbe(g, algo, collect=False, time_limit=t)
        elapsed = time.perf_counter() - start
        assert result.complete is False
        assert result.meta["stopped"] == "time_limit"
        assert elapsed < 2 * t

    def test_max_nodes_budget(self):
        from repro.bigraph.generators import random_bipartite

        g = random_bipartite(30, 30, 0.3, seed=1)
        full = run_mbe(g, "mbet", collect=False)
        assert full.stats.nodes > 50
        capped = run_mbe(
            g, "mbet", collect=False,
            budget=RunBudget(max_nodes=50, check_interval=1),
        )
        assert capped.complete is False
        assert capped.meta["stopped"] == "max_nodes"
        assert capped.count < full.count

    def test_external_cancel(self, g0):
        result = run_mbe(
            g0, "mbet", budget=RunBudget(cancel=lambda: True)
        )
        assert result.complete is False
        assert result.meta["stopped"] == "cancelled"

    def test_progressive_iterator_respects_budget(self, g0):
        from repro.core.mbetm import MBETM

        algo = MBETM()
        out = list(algo.iter_bicliques(g0, budget=RunBudget(cancel=lambda: True)))
        assert out == []  # budget tripped before the first subtree


class TestFaultPlan:
    def test_deterministic_decisions(self):
        plan = FaultPlan(seed=3, crash_rate=0.5)
        first = [plan.decide((v, 0, 1), 0) for v in range(50)]
        second = [plan.decide((v, 0, 1), 0) for v in range(50)]
        assert first == second
        assert "crash" in first and None in first

    def test_targets_match_root_and_slice(self):
        plan = FaultPlan(crash_tasks=(7, (9, 1)))
        assert plan.decide((7, 0, 1), 0) == "crash"
        assert plan.decide((7, 3, 8), 0) == "crash"  # any slice of root 7
        assert plan.decide((9, 1, 4), 0) == "crash"
        assert plan.decide((9, 0, 4), 0) is None
        assert plan.decide((8, 0, 1), 0) is None

    def test_attempt_gating(self):
        plan = FaultPlan(crash_tasks=(1,), crash_attempts=2)
        assert plan.decide((1, 0, 1), 0) == "crash"
        assert plan.decide((1, 0, 1), 1) == "crash"
        assert plan.decide((1, 0, 1), 2) is None  # retried past the faults

    def test_inline_crash_raises(self):
        plan = FaultPlan(crash_tasks=(1,))
        with pytest.raises(InjectedWorkerCrash):
            plan.apply((1, 0, 1), 0, inline=True)
        plan.apply((2, 0, 1), 0, inline=True)  # untargeted: no-op


class TestCheckpointFile:
    FP = {"n_u": 3, "n_v": 2, "seed": 0}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, self.FP)
        writer.record((4, 0, 1), 2, {"nodes": 7}, None)
        writer.record((5, 1, 3), 1, {}, None)
        writer.close()
        ckpt = load_checkpoint(path)
        assert ckpt is not None and ckpt.matches(self.FP)
        assert set(ckpt.records) == {"4:0:1", "5:1:3"}
        assert ckpt.records["4:0:1"]["count"] == 2

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.ckpt") is None

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, self.FP)
        writer.record((4, 0, 1), 2, {}, None)
        writer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"task","key":"5:0')
        ckpt = load_checkpoint(path)
        assert set(ckpt.records) == {"4:0:1"}

    def test_malformed_interior_line_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, self.FP)
        writer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write('{"type":"task","key":"4:0:1","task":[4,0,1]}\n')
        with pytest.raises(CheckpointError, match="malformed"):
            load_checkpoint(path)

    def test_midfile_error_carries_file_and_line(self, tmp_path):
        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, self.FP)
        writer.record((4, 0, 1), 2, {}, None)
        writer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, '{"half a record')
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(CheckpointError, match=r"run\.ckpt:2:"):
            load_checkpoint(path)

    def test_torn_tail_tolerated_but_same_damage_midfile_is_not(
        self, tmp_path
    ):
        # the same byte damage is recoverable at the tail (a torn final
        # write) and fatal anywhere else — the distinction under test
        damage = '{"type":"task","key":"9:0'
        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, self.FP)
        writer.record((4, 0, 1), 2, {}, None)
        writer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(damage)
        assert set(load_checkpoint(path).records) == {"4:0:1"}  # tail: ok
        with open(path, "a", encoding="utf-8") as handle:
            # a later write landed after the damage: now it is mid-file
            handle.write('\n{"type":"task","key":"5:0:1","task":[5,0,1],'
                         '"count":0,"stats":{},"bicliques":null}\n')
        with pytest.raises(CheckpointError, match="mid-file"):
            load_checkpoint(path)

    def test_non_object_record_rejected_even_at_the_tail(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointWriter(path, self.FP).close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]\n")
        with pytest.raises(CheckpointError, match="not a JSON object"):
            load_checkpoint(path)

    @pytest.mark.parametrize("mutation,match", [
        ({"count": "two"}, "count"),
        ({"count": -1}, "count"),
        ({"stats": None}, "stats"),
        ({"task": [4, 0]}, "triple"),
        ({"key": None}, "key"),
        ({"bicliques": [[1, 2, 3]]}, "pairs"),
    ])
    def test_mistyped_task_fields_rejected_with_location(
        self, tmp_path, mutation, match
    ):
        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, self.FP)
        writer.record((4, 0, 1), 2, {}, None)
        writer.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        rec = json.loads(lines[1])
        rec.update(mutation)
        lines[1] = json.dumps(rec)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(CheckpointError, match=match) as exc:
            load_checkpoint(path)
        assert ":2:" in str(exc.value)

    def test_fingerprint_mismatch_names_fields(self, tmp_path):
        path = tmp_path / "run.ckpt"
        CheckpointWriter(path, self.FP).close()
        ckpt = load_checkpoint(path)
        with pytest.raises(CheckpointError, match="seed"):
            ckpt.require_match(dict(self.FP, seed=9), str(path))

    def test_rewrite_compacts_torn_tail(self, tmp_path):
        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, self.FP)
        writer.record((4, 0, 1), 2, {}, None)
        writer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn')
        carried = list(load_checkpoint(path).records.values())
        CheckpointWriter(path, self.FP, resume_records=carried).close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert all(json.loads(ln) for ln in lines)  # every line valid again
        assert len(lines) == 2  # header + carried record


class TestReconcile:
    FP = {"n": 1}

    def _ckpt(self, records):
        ckpt = Checkpoint(header=dict(self.FP, type="header"))
        for task, extra in records:
            rec = {"type": "task", "key": task_key(task), "task": list(task),
                   "count": 0, "stats": {}, "bicliques": None}
            rec.update(extra)
            ckpt.records[rec["key"]] = rec
        return ckpt

    def test_whole_task_done(self):
        ckpt = self._ckpt([((3, 0, 1), {"count": 5})])
        remaining, done = reconcile_tasks([(3, 0, 1), (4, 0, 1)], ckpt, "p")
        assert remaining == [(4, 0, 1)]
        assert [d["count"] for d in done] == [5]

    def test_partial_slices_rescheduled(self):
        ckpt = self._ckpt([((3, 0, 4), {}), ((3, 2, 4), {})])
        tasks = [(3, p, 4) for p in range(4)]
        remaining, done = reconcile_tasks(tasks, ckpt, "p")
        assert remaining == [(3, 1, 4), (3, 3, 4)]
        assert len(done) == 2

    def test_recorded_slicing_overrides_current(self):
        # run 1 split root 3 into 2 slices on retry; run 2's fresh task
        # list holds the unsplit task — resume must follow the records.
        ckpt = self._ckpt([((3, 0, 2), {})])
        remaining, done = reconcile_tasks([(3, 0, 1)], ckpt, "p")
        assert remaining == [(3, 1, 2)]
        assert len(done) == 1

    def test_mixed_slice_counts_rejected(self):
        ckpt = self._ckpt([((3, 0, 2), {}), ((3, 0, 4), {})])
        with pytest.raises(CheckpointError, match="inconsistent"):
            reconcile_tasks([(3, 0, 1)], ckpt, "p")


class TestResilientExecutor:
    """Serial-mode unit tests; the pooled path is covered end to end by
    test_parallel.py's fault-recovery tests."""

    def _executor(self, results, **kw):
        def on_result(task, outcome):
            results.append((task, outcome))
        kw.setdefault("max_retries", 2)
        kw.setdefault("backoff", 0.0)
        return dict(on_result=on_result, **kw)

    def test_serial_retries_then_succeeds(self):
        seen, results = [], []
        def flaky(task, attempt):
            seen.append((task, attempt))
            if attempt == 0:
                raise RuntimeError("boom")
            return task[0] * 10
        ex = ResilientExecutor(task_fn=flaky, **self._executor(results))
        report = ex.run_serial([(1, 0, 1), (2, 0, 1)])
        assert isinstance(report, ExecutionReport)
        assert report.completed == 2 and not report.failures
        assert report.retries == 2
        assert sorted(r[1] for r in results) == [10, 20]

    def test_serial_permanent_failure_recorded(self):
        def always(task, attempt):
            raise RuntimeError("dead")
        ex = ResilientExecutor(
            task_fn=always, **self._executor([], max_retries=1)
        )
        report = ex.run_serial([(1, 0, 1)])
        assert report.completed == 0
        assert len(report.failures) == 1
        assert report.failures[0].attempts == 2
        assert "dead" in report.failures[0].error

    def test_split_on_retry(self):
        ran = []
        def crash_whole(task, attempt):
            if task[2] == 1:
                raise RuntimeError("too big")
            ran.append(task)
            return task
        def split(task, attempts):
            return [(task[0], p, 2) for p in range(2)] if task[2] == 1 else None
        ex = ResilientExecutor(
            task_fn=crash_whole, split_fn=split, **self._executor([])
        )
        report = ex.run_serial([(5, 0, 1)])
        assert sorted(ran) == [(5, 0, 2), (5, 1, 2)]
        assert report.completed == 2 and not report.failures

    def test_deadline_stops_scheduling(self):
        ex = ResilientExecutor(
            task_fn=lambda t, a: t,
            deadline=time.monotonic() - 1.0,
            **self._executor([]),
        )
        report = ex.run_serial([(1, 0, 1)])
        assert report.stopped == "time_limit"
        assert report.completed == 0

    def test_cancel_stops_between_tasks(self):
        done = []
        ex = ResilientExecutor(
            task_fn=lambda t, a: done.append(t),
            cancel=lambda: len(done) >= 1,
            **self._executor([]),
        )
        report = ex.run_serial([(1, 0, 1), (2, 0, 1), (3, 0, 1)])
        assert report.stopped == "cancelled"
        assert len(done) == 1
