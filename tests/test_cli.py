"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.bigraph.io import write_edge_list
from tests.conftest import make_g0


@pytest.fixture
def g0_file(tmp_path):
    path = tmp_path / "g0.txt"
    write_edge_list(make_g0(), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_dataset_and_input_exclusive(self, g0_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "mti", "--input", g0_file]
            )

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "mti", "-a", "x"])

    def test_serve_requires_state_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--state-dir", "/tmp/x"])
        assert args.port == 0
        assert args.workers == 2
        assert args.queue_depth == 16
        assert args.allow_faults is False


class TestRunCommand:
    def test_run_on_file(self, g0_file, capsys):
        assert main(["run", "--input", g0_file, "-a", "mbet"]) == 0
        out = capsys.readouterr().out
        assert "6 maximal bicliques" in out
        assert "complete" in out

    def test_run_with_output(self, g0_file, tmp_path, capsys):
        out_path = tmp_path / "bicliques.tsv"
        assert main(
            ["run", "--input", g0_file, "-o", str(out_path)]
        ) == 0
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 6
        left, right = lines[0].split("\t")
        assert left and right

    def test_run_with_limit(self, g0_file, capsys):
        main(["run", "--input", g0_file, "--max-bicliques", "2"])
        assert "partial: max_bicliques" in capsys.readouterr().out

    def test_run_with_node_limit(self, g0_file, capsys):
        main(["run", "--input", g0_file, "--max-nodes", "1"])
        out = capsys.readouterr().out
        assert "partial: max_nodes" in out or "complete" in out

    def test_checkpoint_requires_parallel(self, g0_file, capsys):
        code = main(["run", "--input", g0_file, "--checkpoint", "x.ckpt"])
        assert code == 2
        assert "requires --algorithm parallel" in capsys.readouterr().err

    def test_checkpoint_resume_roundtrip(self, g0_file, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        args = ["run", "--input", g0_file, "-a", "parallel",
                "--checkpoint", str(ckpt)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed" in out

    def test_run_dataset(self, capsys):
        assert main(["run", "--dataset", "mti", "-a", "mbet"]) == 0
        assert "mti" in capsys.readouterr().out


class TestRunSignals:
    """``repro run`` turns SIGINT/SIGTERM into a graceful partial stop."""

    def _spawn_run(self, tmp_path, *extra):
        import os
        import subprocess
        import sys

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        # a dense random graph whose enumeration runs for minutes — the
        # signal must cut it short within a couple of budget checks
        graph = tmp_path / "dense.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(repo, "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "--kind", "random",
             "--n-u", "70", "--n-v", "70", "--p", "0.4", "--seed", "7",
             "-o", str(graph)],
            cwd=repo, env=env, check=True, capture_output=True,
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "run", "--input", str(graph),
             "-a", "mbet", *extra],
            cwd=repo, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )

    @pytest.mark.parametrize("signame", ["SIGINT", "SIGTERM"])
    def test_signal_yields_partial_results_and_exit_130(
        self, tmp_path, signame
    ):
        import signal as signal_mod
        import time

        proc = self._spawn_run(tmp_path, "-o", str(tmp_path / "out.tsv"))
        time.sleep(1.0)  # let enumeration get going
        proc.send_signal(getattr(signal_mod, signame))
        out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 130, out
        assert "interrupted" in out
        assert "partial" in out
        # partial results were still written
        assert (tmp_path / "out.tsv").exists()


class TestRunObservability:
    def test_run_stderr_summary_without_output(self, g0_file, capsys):
        assert main(["run", "--input", g0_file, "-a", "mbet"]) == 0
        err = capsys.readouterr().err
        assert "6 bicliques" in err
        assert "nodes" in err

    def test_metrics_out_parses_back(self, g0_file, tmp_path, capsys):
        from repro.obs import parse_prometheus_text

        prom = tmp_path / "metrics.prom"
        assert main(
            ["run", "--input", g0_file, "--metrics-out", str(prom)]
        ) == 0
        samples = parse_prometheus_text(prom.read_text())
        assert samples["mbe_maximal_total"] == 6
        assert samples["mbe_runs_total"] == 1
        assert "wrote metrics" in capsys.readouterr().err

    def test_trace_out_is_valid_jsonl(self, g0_file, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(
            ["run", "--input", g0_file, "--trace-out", str(trace)]
        ) == 0
        records = [json.loads(x) for x in trace.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert "span" in kinds and "event" in kinds
        assert records[-1]["kind"] == "trace_meta"
        span_names = {r["name"] for r in records if r["kind"] == "span"}
        assert "enumerate" in span_names

    def test_progress_jsonl_heartbeat(self, g0_file, capsys):
        import json

        assert main(
            ["run", "--input", g0_file, "--progress", "jsonl"]
        ) == 0
        err_lines = capsys.readouterr().err.splitlines()
        heartbeats = [
            json.loads(x) for x in err_lines if x.startswith("{")
        ]
        assert heartbeats
        assert heartbeats[-1]["kind"] == "progress"
        assert heartbeats[-1]["final"] is True
        assert heartbeats[-1]["bicliques"] == 6


class TestProfileCommand:
    def test_profile_prints_breakdowns(self, capsys):
        assert main(
            ["profile", "--dataset", "mti", "--algorithm", "mbet"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase breakdown:" in out
        assert "prune breakdown:" in out
        assert "load" in out
        assert "enumerate" in out
        assert "trie_pruned" in out
        assert "subtrees" in out

    def test_profile_verify_adds_phase(self, g0_file, capsys):
        assert main(
            ["profile", "--input", g0_file, "-a", "mbet", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "verify" in out

    def test_profile_with_metrics_out(self, g0_file, tmp_path):
        from repro.obs import parse_prometheus_text

        prom = tmp_path / "m.prom"
        assert main(
            ["profile", "--input", g0_file, "--metrics-out", str(prom)]
        ) == 0
        samples = parse_prometheus_text(prom.read_text())
        assert samples["mbe_maximal_total"] == 6


class TestOtherCommands:
    def test_stats(self, g0_file, capsys):
        assert main(["stats", "--input", g0_file]) == 0
        out = capsys.readouterr().out
        assert "n_edges" in out and "12" in out
        # the enriched rows: component structure and degeneracy
        assert "components" in out
        assert "degeneracy" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("mti", "dbt"):
            assert key in out

    def test_algorithms(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "mbet" in out and "bruteforce" in out

    def test_experiments_chart(self, capsys):
        assert main(
            ["experiments", "--run", "R-F7", "--quick", "--chart"]
        ) == 0
        out = capsys.readouterr().out
        assert "[log y]" in out  # the ASCII chart rendered

    def test_experiments_single_quick(self, capsys):
        assert main(["experiments", "--run", "R-F10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "R-F10" in out
        assert "merge-path" in out

    def test_analyze(self, g0_file, capsys):
        assert main(["analyze", "--input", g0_file, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "6 maximal bicliques" in out
        assert "most common shapes" in out
        assert "busiest vertices" in out

    def test_analyze_constrained(self, g0_file, capsys):
        assert main(
            ["analyze", "--input", g0_file, "--min-left", "2",
             "--min-right", "2"]
        ) == 0
        # G0 has exactly three bicliques with both sides >= 2
        assert "3 maximal bicliques" in capsys.readouterr().out

    def test_max(self, g0_file, capsys):
        assert main(["max", "--input", g0_file, "--objective", "edges"]) == 0
        out = capsys.readouterr().out
        assert "value 6" in out

    def test_max_infeasible_exit_code(self, g0_file, capsys):
        assert main(
            ["max", "--input", g0_file, "--min-left", "99"]
        ) == 1
        assert "no biclique" in capsys.readouterr().out

    def test_generate_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "gen.txt"
        assert main(
            ["generate", "--kind", "random", "--n-u", "20", "--n-v", "10",
             "--p", "0.3", "--seed", "5", "-o", str(out_path)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["stats", "--input", str(out_path)]) == 0

    def test_experiments_markdown_output(self, tmp_path, capsys):
        md = tmp_path / "out.md"
        assert main(
            ["experiments", "--run", "R-T1", "--quick", "--markdown", str(md)]
        ) == 0
        text = md.read_text()
        assert text.startswith("### R-T1")
        assert "| key |" in text


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, capsys):
        assert main(
            ["fuzz", "--cases", "4", "--seed", "1", "--max-side", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 cases" in out
        assert "0 counterexamples" in out

    def test_unknown_engine_exits_two(self, capsys):
        assert main(["fuzz", "--cases", "1", "--engines", "nope"]) == 2
        assert "unknown engines" in capsys.readouterr().err

    def test_report_is_jsonl(self, tmp_path, capsys):
        import json

        report = tmp_path / "fuzz.jsonl"
        assert main(
            ["fuzz", "--cases", "3", "--seed", "2", "--max-side", "5",
             "--report", str(report)]
        ) == 0
        lines = report.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 4  # 3 cases + summary
        assert [r["type"] for r in records] == ["case"] * 3 + ["summary"]
        assert records[-1]["ok"] is True

    def test_self_test_catches_broken_engine(self, tmp_path, capsys):
        artifacts = tmp_path / "artifacts"
        assert main(
            ["fuzz", "--cases", "40", "--seed", "2", "--max-side", "6",
             "--self-test", "--max-failures", "1",
             "--artifacts", str(artifacts)]
        ) == 0
        out = capsys.readouterr().out
        assert "self-test OK" in out
        assert "FAIL agreement" in out
        written = sorted(p.name for p in artifacts.iterdir())
        assert any(n.endswith(".json") for n in written)
        assert any(n.endswith("_test.py") for n in written)

    def test_dataset_run(self, capsys):
        assert main(
            ["fuzz", "--cases", "0", "--datasets", "mti",
             "--engines", "mbet,mbet_vec", "--seed", "0"]
        ) == 0
        assert "1 cases" in capsys.readouterr().out
