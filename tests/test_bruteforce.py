"""Tests for the brute-force oracle itself (the other tests trust it)."""

from __future__ import annotations

import pytest

from repro import BipartiteGraph, Biclique, run_mbe
from repro.core.bruteforce import BruteForceMBE


class TestBruteForceKnownAnswers:
    def test_single_edge(self):
        g = BipartiteGraph([(0, 0)])
        assert run_mbe(g, "bruteforce").biclique_set() == {
            Biclique.make([0], [0])
        }

    def test_path_of_length_two(self):
        # u0-v0, u0-v1: one maximal biclique ({u0}, {v0, v1})
        g = BipartiteGraph([(0, 0), (0, 1)])
        assert run_mbe(g, "bruteforce").biclique_set() == {
            Biclique.make([0], [0, 1])
        }

    def test_crossing_pair(self):
        # u0-v0, u1-v0, u0-v1: two maximal bicliques
        g = BipartiteGraph([(0, 0), (1, 0), (0, 1)])
        assert run_mbe(g, "bruteforce").biclique_set() == {
            Biclique.make([0, 1], [0]),
            Biclique.make([0], [0, 1]),
        }

    def test_complete_bipartite(self):
        g = BipartiteGraph([(u, v) for u in range(3) for v in range(3)])
        assert run_mbe(g, "bruteforce").biclique_set() == {
            Biclique.make(range(3), range(3))
        }

    def test_perfect_matching(self):
        # Disjoint edges: each edge is its own maximal biclique.
        g = BipartiteGraph([(i, i) for i in range(4)])
        assert run_mbe(g, "bruteforce").biclique_set() == {
            Biclique.make([i], [i]) for i in range(4)
        }

    def test_crown_graph(self):
        # Complete bipartite minus a perfect matching (K3,3 - M):
        # every maximal biclique pairs one side's vertex with the other
        # side's two non-matched vertices, plus the 2x2 combinations.
        n = 3
        g = BipartiteGraph(
            [(u, v) for u in range(n) for v in range(n) if u != v]
        )
        result = run_mbe(g, "bruteforce").biclique_set()
        expected = set()
        for u in range(n):
            expected.add(Biclique.make([u], [v for v in range(n) if v != u]))
            expected.add(Biclique.make([v for v in range(n) if v != u], [u]))
        assert result == expected

    def test_isolated_vertices_ignored(self):
        g = BipartiteGraph([(0, 0)], n_u=5, n_v=5)
        assert run_mbe(g, "bruteforce").count == 1


class TestBruteForceGuards:
    def test_side_cap_enforced(self):
        g = BipartiteGraph([(0, v) for v in range(30)])
        # orientation puts the size-1 side as V, so force it off
        with pytest.raises(ValueError, match="refuses"):
            BruteForceMBE(orient_smaller_v=False).run(g)

    def test_cap_can_be_raised(self):
        g = BipartiteGraph([(0, v) for v in range(24)])
        result = BruteForceMBE(max_side=24, orient_smaller_v=False).run(
            g, collect=False
        )
        assert result.count == 1

    def test_orientation_avoids_cap(self):
        g = BipartiteGraph([(0, v) for v in range(30)])
        result = run_mbe(g, "bruteforce")  # orients to the size-1 side
        assert result.count == 1
