"""Tests for the numpy-vectorized MBET engine."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import run_mbe
from repro.core.mbet_vec import (
    _masks_to_matrix,
    _popcount_rows,
    _popcount_rows_native,
    _popcount_rows_table,
    _row_to_int,
)
from tests.conftest import G0_MAXIMAL, random_bigraph


class TestPacking:
    def test_roundtrip_single_word(self):
        matrix = _masks_to_matrix([0b1011, 0, (1 << 63)], words=1)
        assert matrix.shape == (3, 1)
        assert [_row_to_int(r) for r in matrix] == [0b1011, 0, 1 << 63]

    def test_roundtrip_multi_word(self):
        masks = [(1 << 100) | 0b1, (1 << 127), (1 << 64) - 1]
        matrix = _masks_to_matrix(masks, words=2)
        assert matrix.shape == (3, 2)
        assert [_row_to_int(r) for r in matrix] == masks

    def test_popcount_matches(self):
        masks = [(1 << 70) | 0b111, 0]
        matrix = _masks_to_matrix(masks, words=2)
        counts = _popcount_rows(matrix)
        assert list(counts) == [4, 0]

    def test_popcount_fallback_matches_native(self):
        # the table-based fallback (selected on numpy < 2.0) must agree
        # with int.bit_count — and with np.bitwise_count where available
        rng = random.Random(0)
        masks = [rng.getrandbits(192) for _ in range(64)] + [0, (1 << 192) - 1]
        matrix = _masks_to_matrix(masks, words=3)
        want = [m.bit_count() for m in masks]
        assert list(_popcount_rows_table(matrix)) == want
        if hasattr(np, "bitwise_count"):
            assert list(_popcount_rows_native(matrix)) == want


class TestVectorizedEngine:
    def test_g0(self, g0):
        assert run_mbe(g0, "mbet_vec").biclique_set() == G0_MAXIMAL

    def test_matches_int_engine_on_random_graphs(self):
        rng = random.Random(103)
        for _ in range(60):
            g = random_bigraph(rng)
            assert (
                run_mbe(g, "mbet_vec").biclique_set()
                == run_mbe(g, "mbet").biclique_set()
            )

    def test_wide_signatures_cross_word_boundary(self):
        # a V vertex of degree > 64 forces multi-word rows
        from repro import powerlaw_bipartite

        g = powerlaw_bipartite(300, 60, 2000, 1.7, seed=8)
        assert max(g.degree_v(v) for v in range(g.n_v)) > 64
        a = run_mbe(g, "mbet", collect=False).count
        b = run_mbe(g, "mbet_vec", collect=False).count
        assert a == b

    @pytest.mark.parametrize("flags", [
        {"use_trie": False}, {"use_merge": False}, {"use_sort": False},
        {"min_left": 2, "min_right": 2},
    ])
    def test_options_supported(self, g0, flags):
        expected = run_mbe(g0, "mbet", **flags).biclique_set()
        assert run_mbe(g0, "mbet_vec", **flags).biclique_set() == expected

    def test_merging_stat_advances(self):
        from repro import BipartiteGraph

        g = BipartiteGraph(
            [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        )
        result = run_mbe(g, "mbet_vec", order="natural")
        assert result.stats.merged_candidates >= 1
        assert result.count == 2


class TestKernelPolicy:
    @pytest.mark.parametrize("policy,min_groups", [
        ("always", 2), ("never", 2), ("auto", 2), ("auto", 4), ("auto", 10**6),
    ])
    def test_every_policy_agrees_with_int_engine(self, policy, min_groups):
        rng = random.Random(104)
        for _ in range(25):
            g = random_bigraph(rng)
            assert (
                run_mbe(
                    g, "mbet_vec",
                    kernel_policy=policy, kernel_min_groups=min_groups,
                ).biclique_set()
                == run_mbe(g, "mbet").biclique_set()
            )

    def test_always_agrees_across_word_boundary(self):
        from repro import powerlaw_bipartite

        g = powerlaw_bipartite(300, 60, 2000, 1.7, seed=8)
        want = run_mbe(g, "mbet", collect=False).count
        for policy, kmg in (("always", 2), ("auto", 4)):
            r = run_mbe(
                g, "mbet_vec", collect=False,
                kernel_policy=policy, kernel_min_groups=kmg,
            )
            assert r.count == want
            assert r.stats.kernel_nodes > 0
            assert r.stats.kernel_batches > 0

    def test_never_runs_zero_kernel_nodes(self, g0):
        r = run_mbe(g0, "mbet_vec", kernel_policy="never")
        assert r.stats.kernel_nodes == 0
        assert r.stats.kernel_batches == 0
        assert r.biclique_set() == G0_MAXIMAL

    def test_kernel_counters_consistent(self):
        rng = random.Random(105)
        g = random_bigraph(rng, max_side=30, p=0.4)
        r = run_mbe(
            g, "mbet_vec", kernel_policy="always", collect=False
        )
        assert r.stats.kernel_nodes == r.stats.nodes
        assert r.stats.kernel_rows == r.stats.intersections

    def test_constrained_agreement_under_always(self):
        rng = random.Random(106)
        for _ in range(15):
            g = random_bigraph(rng)
            want = run_mbe(g, "mbet", min_left=2, min_right=2).biclique_set()
            got = run_mbe(
                g, "mbet_vec", kernel_policy="always",
                min_left=2, min_right=2,
            ).biclique_set()
            assert got == want

    def test_policy_validation(self):
        from repro.core.mbet_vec import MBETVectorized

        with pytest.raises(ValueError):
            MBETVectorized(kernel_policy="sometimes")
        with pytest.raises(ValueError):
            MBETVectorized(kernel_min_groups=1)
