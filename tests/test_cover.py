"""Tests for the greedy biclique edge cover."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import Biclique, BipartiteGraph, run_mbe
from repro.analysis import cover_quality, greedy_biclique_cover
from tests.strategies import bipartite_graphs

RELAXED = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def covered_edges(cover):
    return {(u, v) for b in cover for u in b.left for v in b.right}


class TestGreedyCover:
    def test_g0_cover_is_complete(self, g0):
        cover = greedy_biclique_cover(g0)
        assert covered_edges(cover) == set(g0.edges())

    def test_first_pick_is_largest(self, g0):
        cover = greedy_biclique_cover(g0)
        assert cover[0].n_edges == 6  # G0's largest maximal biclique

    def test_single_block(self):
        g = BipartiteGraph([(u, v) for u in range(3) for v in range(4)])
        cover = greedy_biclique_cover(g)
        assert len(cover) == 1

    def test_matching_needs_every_edge(self):
        g = BipartiteGraph([(i, i) for i in range(4)])
        assert len(greedy_biclique_cover(g)) == 4

    def test_empty_graph(self):
        assert greedy_biclique_cover(BipartiteGraph([])) == []

    def test_non_edge_input_rejected(self, g0):
        with pytest.raises(ValueError, match="non-edge"):
            greedy_biclique_cover(g0, [Biclique.make([0, 4], [0])])

    def test_incomplete_pool_rejected(self, g0):
        partial = sorted(run_mbe(g0, "mbet").bicliques)[:1]
        with pytest.raises(ValueError, match="cannot cover"):
            greedy_biclique_cover(g0, partial)

    def test_every_pick_gains(self, g0):
        cover = greedy_biclique_cover(g0)
        seen: set[tuple[int, int]] = set()
        for b in cover:
            edges = {(u, v) for u in b.left for v in b.right}
            assert edges - seen, "a pick must cover new edges"
            seen |= edges

    @RELAXED
    @given(g=bipartite_graphs())
    def test_property_complete_and_bounded(self, g):
        cover = greedy_biclique_cover(g)
        assert covered_edges(cover) == set(g.edges())
        assert len(cover) <= max(g.n_edges, 1)


class TestCoverQuality:
    def test_metrics(self, g0):
        cover = greedy_biclique_cover(g0)
        quality = cover_quality(g0, cover)
        assert quality["size"] == len(cover)
        assert quality["total_area"] >= g0.n_edges
        assert quality["compression"] > 0

    def test_empty_cover(self, g0):
        quality = cover_quality(g0, [])
        assert quality["size"] == 0
        assert quality["compression"] == 0.0
