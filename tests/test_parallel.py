"""Tests for the parallel driver (task construction, slices, agreement)."""

from __future__ import annotations

import random

import pytest

from repro import run_mbe
from repro.core.parallel import ParallelMBE
from repro.datasets import load
from tests.conftest import G0_MAXIMAL, random_bigraph


class TestConstruction:
    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ParallelMBE(workers=0)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            ParallelMBE(bound_height=0)
        with pytest.raises(ValueError):
            ParallelMBE(bound_size=-1)

    def test_runtime_option_validation(self):
        with pytest.raises(ValueError):
            ParallelMBE(max_retries=-1)
        with pytest.raises(ValueError):
            ParallelMBE(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            ParallelMBE(task_timeout=0)

    def test_limits_supported(self, g0):
        from repro.core.base import EnumerationLimits

        algo = ParallelMBE(workers=1)
        result = algo.run(g0, limits=EnumerationLimits(max_bicliques=3))
        assert result.complete is False
        assert result.count == 3
        assert len(result.bicliques) == 3
        assert result.meta["stopped"] == "max_bicliques"
        assert result.biclique_set() <= G0_MAXIMAL


class TestTaskBuilding:
    def test_tasks_cover_every_active_vertex(self, g0):
        algo = ParallelMBE(workers=2, bound_height=10_000, bound_size=10_000)
        tasks = algo._make_tasks(g0)
        assert {t[0] for t in tasks} == {0, 1, 2, 3}
        assert all(t[1:] == (0, 1) for t in tasks)  # no splits

    def test_isolated_vertices_excluded(self):
        from repro import BipartiteGraph

        g = BipartiteGraph([(0, 0)], n_u=3, n_v=3)
        tasks = ParallelMBE(workers=1)._make_tasks(g)
        assert {t[0] for t in tasks} == {0}

    def test_splitting_produces_partitioned_slices(self, g0):
        algo = ParallelMBE(workers=2, bound_height=1, bound_size=1)
        tasks = algo._make_tasks(g0)
        by_v: dict[int, list[tuple[int, int]]] = {}
        for v, part, n_parts in tasks:
            by_v.setdefault(v, []).append((part, n_parts))
        for v, slices in by_v.items():
            n_parts = slices[0][1]
            assert all(n == n_parts for _, n in slices)
            assert sorted(p for p, _ in slices) == list(range(n_parts))

    def test_large_tasks_first(self):
        g = load("mti")
        tasks = ParallelMBE(workers=2)._make_tasks(g)
        assert len(tasks) > 0  # LPT order is checked implicitly by sort


class TestAgreement:
    def test_g0_all_configurations(self, g0):
        for workers in (1, 2):
            for bounds in ({}, {"bound_height": 1, "bound_size": 1}):
                result = run_mbe(g0, "parallel", workers=workers, **bounds)
                assert result.biclique_set() == G0_MAXIMAL
                assert result.meta["workers"] == workers

    def test_random_graphs_with_aggressive_splitting(self):
        rng = random.Random(21)
        for _ in range(30):
            g = random_bigraph(rng)
            truth = run_mbe(g, "bruteforce").biclique_set()
            got = run_mbe(
                g, "parallel", workers=2, bound_height=1, bound_size=1
            ).biclique_set()
            assert got == truth

    def test_counts_match_mbet_on_dataset(self):
        g = load("mti")
        serial = run_mbe(g, "mbet", collect=False).count
        parallel = run_mbe(g, "parallel", workers=2, collect=False).count
        assert parallel == serial

    def test_stats_aggregated(self, g0):
        result = run_mbe(g0, "parallel", workers=1, collect=False)
        assert result.stats.subtrees > 0
        assert result.stats.maximal == result.count == 6

    def test_orientation(self, g0):
        result = run_mbe(
            g0.swap_sides(), "parallel", workers=1, orient_smaller_v=True
        )
        assert result.biclique_set() == {b.swap() for b in G0_MAXIMAL}


class TestBudgets:
    """Limits are now supported in parallel mode (formerly NotImplementedError)."""

    def test_max_bicliques_pooled(self, g0):
        result = run_mbe(
            g0, "parallel", workers=2, max_bicliques=3, retry_backoff=0.01
        )
        assert result.complete is False
        assert result.count == 3
        assert result.meta["stopped"] == "max_bicliques"
        assert result.biclique_set() <= G0_MAXIMAL

    def test_generous_cap_stays_complete(self, g0):
        result = run_mbe(g0, "parallel", workers=1, max_bicliques=1_000)
        assert result.complete is True
        assert result.biclique_set() == G0_MAXIMAL

    def test_time_limit_partial_not_raising(self):
        # A deadline that has effectively already passed: the run must come
        # back partial (possibly empty) instead of raising.
        g = load("mti")
        result = run_mbe(g, "parallel", workers=1, time_limit=1e-9)
        assert result.complete is False
        assert result.meta["stopped"] == "time_limit"
        serial = run_mbe(g, "mbet", collect=False).count
        assert result.count <= serial


def _crash_plan(g, **overrides):
    """Fault plan targeting the root with the largest subtree of ``g``."""
    from repro.runtime import FaultPlan

    tasks = ParallelMBE(workers=2)._make_tasks(g)
    victim = tasks[0][0]
    options = {"crash_tasks": (victim,)}
    options.update(overrides)
    return FaultPlan(**options), victim


class TestFaultRecovery:
    def test_inline_crash_retries_to_completion(self, g0):
        faults, _victim = _crash_plan(g0, crash_attempts=1)
        result = run_mbe(
            g0, "parallel", workers=1, faults=faults,
            max_retries=2, retry_backoff=0.0,
        )
        assert result.complete is True
        assert result.biclique_set() == G0_MAXIMAL
        assert result.meta["retries"] >= 1

    def test_inline_permanent_crash_partial(self, g0):
        faults, victim = _crash_plan(g0, crash_attempts=99)
        result = run_mbe(
            g0, "parallel", workers=1, faults=faults,
            max_retries=1, retry_backoff=0.0,
        )
        assert result.complete is False
        assert result.biclique_set() < G0_MAXIMAL
        failed_roots = {f["task"][0] for f in result.meta["failures"]}
        assert victim in failed_roots

    def test_pooled_crash_retries_to_completion(self, g0):
        faults, _victim = _crash_plan(g0, crash_attempts=1)
        result = run_mbe(
            g0, "parallel", workers=2, faults=faults,
            max_retries=3, retry_backoff=0.01,
        )
        assert result.complete is True
        assert result.biclique_set() == G0_MAXIMAL
        assert result.meta["pool_restarts"] >= 1

    def test_pooled_worker_death_partial_no_exception(self, g0):
        # Kill 1 of 2 workers on every attempt of one task: the run must
        # return partial results with failure records, never raise.
        faults, victim = _crash_plan(g0, crash_attempts=99)
        result = run_mbe(
            g0, "parallel", workers=2, faults=faults,
            max_retries=1, retry_backoff=0.01,
        )
        assert result.complete is False
        assert result.count >= 1  # healthy subtrees still delivered
        assert result.biclique_set() < G0_MAXIMAL
        failed_roots = {f["task"][0] for f in result.meta["failures"]}
        assert victim in failed_roots
        for failure in result.meta["failures"]:
            assert failure["attempts"] >= 2  # retried before giving up


class TestCheckpointResume:
    def test_resume_after_crash_matches_uninterrupted(self, g0, tmp_path):
        path = tmp_path / "g0.ckpt"
        faults, _victim = _crash_plan(g0, crash_attempts=99)
        first = run_mbe(
            g0, "parallel", workers=2, faults=faults,
            max_retries=1, retry_backoff=0.01, checkpoint=path,
        )
        assert first.complete is False
        second = run_mbe(g0, "parallel", workers=2, checkpoint=path)
        assert second.complete is True
        assert second.biclique_set() == G0_MAXIMAL
        assert second.meta["resumed_tasks"] >= 1

    def test_resume_skips_completed_work(self, g0, tmp_path):
        path = tmp_path / "g0.ckpt"
        first = run_mbe(g0, "parallel", workers=1, checkpoint=path)
        assert first.complete is True
        second = run_mbe(g0, "parallel", workers=1, checkpoint=path)
        assert second.complete is True
        assert second.biclique_set() == G0_MAXIMAL
        assert second.meta["resumed_tasks"] == second.meta["tasks"]
        assert second.meta.get("completed_tasks", 0) == 0

    def test_resume_on_dataset_with_splitting(self, tmp_path):
        g = load("mti")
        path = tmp_path / "mti.ckpt"
        faults, _victim = _crash_plan(g, crash_attempts=99)
        first = run_mbe(
            g, "parallel", workers=2, bound_height=1, bound_size=64,
            faults=faults, max_retries=1, retry_backoff=0.01, checkpoint=path,
        )
        assert first.complete is False
        second = run_mbe(
            g, "parallel", workers=2, bound_height=1, bound_size=64,
            checkpoint=path,
        )
        truth = run_mbe(g, "mbet").biclique_set()
        assert second.complete is True
        assert second.biclique_set() == truth

    def test_mismatched_checkpoint_rejected(self, g0, tmp_path):
        from repro.runtime import CheckpointError

        path = tmp_path / "g0.ckpt"
        run_mbe(g0, "parallel", workers=1, checkpoint=path)
        with pytest.raises(CheckpointError, match="different run"):
            run_mbe(g0, "parallel", workers=1, seed=7, checkpoint=path)

    def test_threshold_change_invalidates_checkpoint(self, g0, tmp_path):
        # min_left/min_right are part of the run's identity: resuming an
        # unconstrained checkpoint under thresholds would silently keep
        # the unconstrained results
        from repro.runtime import CheckpointError

        path = tmp_path / "g0.ckpt"
        run_mbe(g0, "parallel", workers=1, checkpoint=path)
        with pytest.raises(CheckpointError, match="min_left"):
            run_mbe(g0, "parallel", workers=1, min_left=2, checkpoint=path)

    def test_constrained_resume_matches_serial(self, g0, tmp_path):
        path = tmp_path / "g0.ckpt"
        faults, _victim = _crash_plan(g0, crash_attempts=99)
        first = run_mbe(
            g0, "parallel", workers=1, min_left=2, min_right=2,
            faults=faults, max_retries=1, retry_backoff=0.01,
            checkpoint=path,
        )
        assert first.complete is False
        second = run_mbe(
            g0, "parallel", workers=1, min_left=2, min_right=2,
            checkpoint=path,
        )
        truth = run_mbe(g0, "mbet", min_left=2, min_right=2).biclique_set()
        assert second.complete is True
        assert second.biclique_set() == truth
        assert second.count == len(truth)

    def test_checkpoint_survives_torn_tail(self, g0, tmp_path):
        path = tmp_path / "g0.ckpt"
        run_mbe(g0, "parallel", workers=1, checkpoint=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"task","key":"9:')  # killed mid-write
        result = run_mbe(g0, "parallel", workers=1, checkpoint=path)
        assert result.complete is True
        assert result.biclique_set() == G0_MAXIMAL


@pytest.mark.stress
class TestStallRecovery:
    def test_hung_worker_terminated_and_retried(self, g0):
        from repro.runtime import FaultPlan

        tasks = ParallelMBE(workers=2)._make_tasks(g0)
        victim = tasks[0][0]
        faults = FaultPlan(
            hang_tasks=(victim,), hang_seconds=60.0, hang_attempts=1
        )
        result = run_mbe(
            g0, "parallel", workers=2, faults=faults,
            task_timeout=1.0, max_retries=2, retry_backoff=0.01,
        )
        assert result.complete is True
        assert result.biclique_set() == G0_MAXIMAL
        assert result.meta["pool_restarts"] >= 1
