"""Tests for the parallel driver (task construction, slices, agreement)."""

from __future__ import annotations

import random

import pytest

from repro import run_mbe
from repro.core.parallel import ParallelMBE
from repro.datasets import load
from tests.conftest import G0_MAXIMAL, random_bigraph


class TestConstruction:
    def test_worker_validation(self):
        with pytest.raises(ValueError):
            ParallelMBE(workers=0)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            ParallelMBE(bound_height=0)
        with pytest.raises(ValueError):
            ParallelMBE(bound_size=-1)

    def test_limits_unsupported(self, g0):
        from repro.core.base import EnumerationLimits

        algo = ParallelMBE(workers=1)
        with pytest.raises(NotImplementedError):
            algo.run(g0, limits=EnumerationLimits(max_bicliques=3))


class TestTaskBuilding:
    def test_tasks_cover_every_active_vertex(self, g0):
        algo = ParallelMBE(workers=2, bound_height=10_000, bound_size=10_000)
        tasks = algo._make_tasks(g0)
        assert {t[0] for t in tasks} == {0, 1, 2, 3}
        assert all(t[1:] == (0, 1) for t in tasks)  # no splits

    def test_isolated_vertices_excluded(self):
        from repro import BipartiteGraph

        g = BipartiteGraph([(0, 0)], n_u=3, n_v=3)
        tasks = ParallelMBE(workers=1)._make_tasks(g)
        assert {t[0] for t in tasks} == {0}

    def test_splitting_produces_partitioned_slices(self, g0):
        algo = ParallelMBE(workers=2, bound_height=1, bound_size=1)
        tasks = algo._make_tasks(g0)
        by_v: dict[int, list[tuple[int, int]]] = {}
        for v, part, n_parts in tasks:
            by_v.setdefault(v, []).append((part, n_parts))
        for v, slices in by_v.items():
            n_parts = slices[0][1]
            assert all(n == n_parts for _, n in slices)
            assert sorted(p for p, _ in slices) == list(range(n_parts))

    def test_large_tasks_first(self):
        g = load("mti")
        tasks = ParallelMBE(workers=2)._make_tasks(g)
        assert len(tasks) > 0  # LPT order is checked implicitly by sort


class TestAgreement:
    def test_g0_all_configurations(self, g0):
        for workers in (1, 2):
            for bounds in ({}, {"bound_height": 1, "bound_size": 1}):
                result = run_mbe(g0, "parallel", workers=workers, **bounds)
                assert result.biclique_set() == G0_MAXIMAL
                assert result.meta["workers"] == workers

    def test_random_graphs_with_aggressive_splitting(self):
        rng = random.Random(21)
        for _ in range(30):
            g = random_bigraph(rng)
            truth = run_mbe(g, "bruteforce").biclique_set()
            got = run_mbe(
                g, "parallel", workers=2, bound_height=1, bound_size=1
            ).biclique_set()
            assert got == truth

    def test_counts_match_mbet_on_dataset(self):
        g = load("mti")
        serial = run_mbe(g, "mbet", collect=False).count
        parallel = run_mbe(g, "parallel", workers=2, collect=False).count
        assert parallel == serial

    def test_stats_aggregated(self, g0):
        result = run_mbe(g0, "parallel", workers=1, collect=False)
        assert result.stats.subtrees > 0
        assert result.stats.maximal == result.count == 6

    def test_orientation(self, g0):
        result = run_mbe(
            g0.swap_sides(), "parallel", workers=1, orient_smaller_v=True
        )
        assert result.biclique_set() == {b.swap() for b in G0_MAXIMAL}
