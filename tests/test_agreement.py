"""The central correctness property: every algorithm equals brute force.

Hypothesis drives random bipartite graphs through all exact algorithms and
the parallel driver; any duplicate, missing, or non-maximal biclique fails
the property.  This is the test that caught every algorithmic bug during
development — treat it as the specification.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import run_mbe, verify_result
from tests.conftest import EXACT_ALGORITHMS
from tests.strategies import bipartite_graphs

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("algo", EXACT_ALGORITHMS)
@RELAXED
@given(g=bipartite_graphs())
def test_algorithm_matches_bruteforce(algo, g):
    truth = run_mbe(g, "bruteforce").biclique_set()
    result = run_mbe(g, algo)
    assert result.biclique_set() == truth
    assert result.count == len(truth)


@RELAXED
@given(g=bipartite_graphs())
def test_all_results_verify_against_definition(g):
    truth = run_mbe(g, "bruteforce").biclique_set()
    verify_result(g, truth, expected=truth)


@RELAXED
@given(g=bipartite_graphs())
def test_parallel_split_matches_bruteforce(g):
    truth = run_mbe(g, "bruteforce").biclique_set()
    got = run_mbe(
        g, "parallel", workers=1, bound_height=1, bound_size=1
    ).biclique_set()
    assert got == truth


@RELAXED
@given(g=bipartite_graphs())
def test_orientation_invariance(g):
    # Swapping sides then orienting back must not change the result.
    plain = run_mbe(g, "mbet").biclique_set()
    swapped = run_mbe(g.swap_sides(), "mbet").biclique_set()
    assert {b.swap() for b in swapped} == plain


@RELAXED
@given(g=bipartite_graphs())
def test_order_invariance_of_result_set(g):
    base = run_mbe(g, "mbet", order="degree").biclique_set()
    for order in ("natural", "degree_desc", "unilateral", "random"):
        assert run_mbe(g, "mbet", order=order).biclique_set() == base


@RELAXED
@given(g=bipartite_graphs())
def test_tiny_trie_budget_invariance(g):
    base = run_mbe(g, "mbet").biclique_set()
    assert run_mbe(g, "mbetm", max_nodes=2).biclique_set() == base


@RELAXED
@given(g=bipartite_graphs(max_u=10, max_v=10))
def test_counts_agree_across_all_algorithms(g):
    counts = {
        algo: run_mbe(g, algo, collect=False).count for algo in EXACT_ALGORITHMS
    }
    assert len(set(counts.values())) == 1, counts
