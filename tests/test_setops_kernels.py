"""Differential tests for the batched uint64 bitmap kernel layer.

Every kernel is checked against the obvious reference: Python-int mask
arithmetic (the representation :mod:`repro.core.mbet` computes with) and
plain ``set`` algebra.  Universes straddle the word boundaries (63/64/65
bits) and the cache-block boundary (``BLOCK_WORDS`` words) on purpose.
"""

import random

import numpy as np
import pytest

from repro.setops import kernels
from repro.setops.bitmap import SignatureSpace
from repro.setops.kernels import (
    BLOCK_WORDS,
    and_rows,
    andnot_rows,
    disjoint_reduce,
    filter_batch,
    group_rows,
    kernel_meta,
    mask_from_row,
    or_reduce,
    or_rows,
    pack_indices,
    pack_masks,
    partitioned_union_rows,
    popcount_backend,
    popcount_partitions,
    popcount_rows,
    popcount_rows_native,
    popcount_rows_table,
    subset_reduce,
    unpack_indices,
    unpack_masks,
    words_for,
)

# universes that straddle word and cache-block boundaries
WIDTHS = [1, 7, 63, 64, 65, 128, 129, 64 * BLOCK_WORDS + 17]


def random_masks(rng, n_bits, count, density=0.3):
    out = []
    for _ in range(count):
        mask = 0
        for b in range(n_bits):
            if rng.random() < density:
                mask |= 1 << b
        out.append(mask)
    return out


def adversarial_masks(n_bits):
    full = (1 << n_bits) - 1
    masks = [0, full, 1, 1 << (n_bits - 1)]
    if n_bits > 64:
        masks += [(1 << 64) - 1, full ^ ((1 << 64) - 1), 1 << 63, 1 << 64]
    return [m & full for m in masks]


class TestPacking:
    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_pack_unpack_roundtrip(self, n_bits):
        rng = random.Random(n_bits)
        masks = random_masks(rng, n_bits, 20) + adversarial_masks(n_bits)
        words = words_for(n_bits)
        matrix = pack_masks(masks, words)
        assert matrix.shape == (len(masks), words)
        assert matrix.dtype == np.uint64
        assert unpack_masks(matrix) == masks
        for i, mask in enumerate(masks):
            assert mask_from_row(matrix[i]) == mask

    def test_pack_empty_batch(self):
        assert pack_masks([], 3).shape == (0, 3)
        assert unpack_masks(np.zeros((0, 3), dtype=np.uint64)) == []

    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_pack_indices_matches_mask_pack(self, n_bits):
        rng = random.Random(100 + n_bits)
        masks = random_masks(rng, n_bits, 10) + adversarial_masks(n_bits)
        rows = [[b for b in range(n_bits) if (m >> b) & 1] for m in masks]
        via_idx = pack_indices(rows, n_bits)
        via_mask = pack_masks(masks, words_for(n_bits))
        assert np.array_equal(via_idx, via_mask)
        for i, row in enumerate(rows):
            assert unpack_indices(via_idx[i]).tolist() == row

    def test_pack_indices_rejects_out_of_universe(self):
        with pytest.raises(ValueError):
            pack_indices([[0, 70]], 64)
        with pytest.raises(ValueError):
            pack_indices([[-1]], 64)

    def test_words_for(self):
        assert [words_for(n) for n in (0, 1, 63, 64, 65, 128, 129)] == [
            1, 1, 1, 1, 2, 2, 3,
        ]
        with pytest.raises(ValueError):
            words_for(-1)


class TestPopcount:
    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_matches_int_bit_count(self, n_bits):
        rng = random.Random(200 + n_bits)
        masks = random_masks(rng, n_bits, 25) + adversarial_masks(n_bits)
        matrix = pack_masks(masks, words_for(n_bits))
        expect = [m.bit_count() for m in masks]
        assert popcount_rows(matrix).tolist() == expect
        assert popcount_rows_table(matrix).tolist() == expect
        if hasattr(np, "bitwise_count"):
            assert popcount_rows_native(matrix).tolist() == expect

    def test_backend_matches_runtime_capability(self):
        # the bug this pins: the backend must be picked by runtime
        # hasattr detection, not by what the oldest supported numpy
        # (pyproject floor) would offer.  Runs on both CI numpy legs.
        if hasattr(np, "bitwise_count"):
            assert popcount_backend() == "bitwise_count"
        else:
            assert popcount_backend() == "byte-table"
        assert kernel_meta()["popcount_backend"] == popcount_backend()

    def test_1d_popcount(self):
        row = np.array([np.uint64(2**64 - 1), np.uint64(0), np.uint64(5)])
        assert popcount_rows(row).tolist() == [64, 0, 2]


class TestAlgebra:
    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_row_ops_match_int_ops(self, n_bits):
        rng = random.Random(300 + n_bits)
        words = words_for(n_bits)
        masks = random_masks(rng, n_bits, 16) + adversarial_masks(n_bits)
        other = random_masks(rng, n_bits, 1)[0]
        matrix = pack_masks(masks, words)
        row = pack_masks([other], words)[0]
        assert unpack_masks(and_rows(matrix, row)) == [m & other for m in masks]
        assert unpack_masks(or_rows(matrix, row)) == [m | other for m in masks]
        assert unpack_masks(andnot_rows(matrix, row)) == [
            m & ~other for m in masks
        ]

    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_subset_and_disjoint_reduce(self, n_bits):
        rng = random.Random(400 + n_bits)
        words = words_for(n_bits)
        other = random_masks(rng, n_bits, 1, density=0.5)[0]
        masks = (
            random_masks(rng, n_bits, 12)
            + adversarial_masks(n_bits)
            + [other, other & (other - 1) if other else 0]
        )
        matrix = pack_masks(masks, words)
        row = pack_masks([other], words)[0]
        assert subset_reduce(matrix, row).tolist() == [
            m & other == m for m in masks
        ]
        assert disjoint_reduce(matrix, row).tolist() == [
            m & other == 0 for m in masks
        ]


class TestFilterBatch:
    @pytest.mark.parametrize("n_bits", WIDTHS)
    def test_classification_matches_int_reference(self, n_bits):
        rng = random.Random(500 + n_bits)
        words = words_for(n_bits)
        branch = random_masks(rng, n_bits, 1, density=0.5)[0]
        masks = (
            random_masks(rng, n_bits, 20)
            + adversarial_masks(n_bits)
            + [branch]
        )
        matrix = pack_masks(masks, words)
        row = pack_masks([branch], words)[0]
        for row_pc in (None, branch.bit_count()):
            inter, pc, full, nonzero = filter_batch(matrix, row, row_pc)
            assert unpack_masks(inter.reshape(len(masks), words)) == [
                m & branch for m in masks
            ]
            assert pc.tolist() == [(m & branch).bit_count() for m in masks]
            # inter ⊆ branch always, so full ⟺ inter == branch
            assert full.tolist() == [m & branch == branch for m in masks]
            assert nonzero.tolist() == [m & branch != 0 for m in masks]

    def test_empty_batch(self):
        matrix = np.zeros((0, 2), dtype=np.uint64)
        row = pack_masks([(1 << 70) | 3], 2)[0]
        inter, pc, full, nonzero = filter_batch(matrix, row)
        assert inter.shape[0] == pc.size == full.size == nonzero.size == 0


class TestGrouping:
    @pytest.mark.parametrize("n_bits", [1, 64, 65, 129])
    def test_group_rows_matches_dict_grouping(self, n_bits):
        rng = random.Random(600 + n_bits)
        pool = random_masks(rng, n_bits, 6) + [0]
        masks = [rng.choice(pool) for _ in range(40)]
        matrix = pack_masks(masks, words_for(n_bits))
        unique, inverse = group_rows(matrix)
        assert sorted(unpack_masks(unique)) == sorted(set(masks))
        rebuilt = unpack_masks(unique[inverse])
        assert rebuilt == masks


class TestPartitionedUnion:
    @pytest.mark.parametrize("n_bits", WIDTHS)
    @pytest.mark.parametrize("lanes", [1, 2, 4, 13])
    def test_matches_set_union(self, n_bits, lanes):
        rng = random.Random(700 + n_bits * 31 + lanes)
        masks = random_masks(rng, n_bits, 9) + adversarial_masks(n_bits)
        matrix = pack_masks(masks, words_for(n_bits))
        expect = sorted(
            {b for m in masks for b in range(n_bits) if (m >> b) & 1}
        )
        assert partitioned_union_rows(matrix, lanes).tolist() == expect

    def test_lanes_exceed_words_yield_empty_lanes(self):
        # lanes > words forces duplicate split points; lanes owning an
        # empty word range must contribute nothing, not duplicates —
        # the same contract merge_path_partitions has for lanes > n+m.
        row = pack_masks([0b1011], 1)[0:1]
        out = partitioned_union_rows(pack_masks([0b1011], 1), lanes=16)
        assert out.tolist() == [0, 1, 3]
        points = popcount_partitions(row[0], 16)
        assert len(points) == 17
        assert points[0] == 0 and points[-1] == 1
        assert all(a <= b for a, b in zip(points, points[1:]))

    def test_empty_batch_and_empty_union(self):
        empty = np.zeros((0, 2), dtype=np.uint64)
        assert partitioned_union_rows(empty).tolist() == []
        zeros = np.zeros((3, 2), dtype=np.uint64)
        assert partitioned_union_rows(zeros).tolist() == []
        assert or_reduce(zeros).tolist() == [0, 0]

    def test_lane_invalid(self):
        with pytest.raises(ValueError):
            popcount_partitions(np.zeros(1, dtype=np.uint64), 0)

    @pytest.mark.parametrize("n_bits", [64, 65, 640])
    def test_agrees_with_merge_path_partitioned_union(self, n_bits):
        from repro.setops.intersect_path import partitioned_union

        rng = random.Random(800 + n_bits)
        a_mask, b_mask = random_masks(rng, n_bits, 2, density=0.2)
        a = [b for b in range(n_bits) if (a_mask >> b) & 1]
        b = [x for x in range(n_bits) if (b_mask >> x) & 1]
        matrix = pack_masks([a_mask, b_mask], words_for(n_bits))
        assert partitioned_union_rows(matrix, 4).tolist() == partitioned_union(
            a, b, lanes=4
        )


class TestSignatureSpaceRows:
    @pytest.mark.parametrize("n_bits", [1, 63, 64, 65, 129])
    def test_encode_rows_matches_encode(self, n_bits):
        rng = random.Random(900 + n_bits)
        universe = sorted(rng.sample(range(n_bits * 7), n_bits))
        space = SignatureSpace(universe)
        assert space.words == words_for(n_bits)
        rows = []
        for _ in range(12):
            members = [v for v in universe if rng.random() < 0.4]
            noise = [v + 1 for v in members if v + 1 not in space]
            rng.shuffle(members)
            rows.append(members + noise)  # noise must be dropped
        rows.append([])
        for kmw in (1, 2, 10**6):  # both encode paths, same answer
            matrix = space.encode_rows(rows, kernel_min_words=kmw)
            assert unpack_masks(matrix) == [space.encode(r) for r in rows]
        for i, row in enumerate(rows):
            assert space.decode_row(matrix[i]) == sorted(
                set(row) & set(universe)
            )

    def test_pack_roundtrips_masks(self):
        space = SignatureSpace(range(70))
        masks = [0, 1, (1 << 70) - 1, 1 << 69]
        assert unpack_masks(space.pack(masks)) == masks

    def test_encode_rows_empty(self):
        space = SignatureSpace(range(100))
        assert space.encode_rows([]).shape == (0, 2)
        assert unpack_masks(space.encode_rows([[], []])) == [0, 0]


class TestMeta:
    def test_kernel_meta_fields(self):
        meta = kernel_meta()
        assert meta["numpy"] == np.__version__
        assert meta["popcount_backend"] in {"bitwise_count", "byte-table"}
        assert meta["numba"] in {
            "available", "unavailable", "disabled", "compile-failed",
        }
        assert meta["word_bits"] == 64
        assert meta["block_words"] == kernels.BLOCK_WORDS
