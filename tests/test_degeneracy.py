"""Tests for the bipartite degeneracy peel order."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro import BipartiteGraph, run_mbe, vertex_order
from repro.bigraph.ordering import degeneracy_order
from tests.strategies import bipartite_graphs

RELAXED = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestDegeneracyOrder:
    def test_is_a_permutation(self, g0):
        order, _k = degeneracy_order(g0)
        assert sorted(order) == list(range(g0.n_v))

    def test_strategy_name_wired(self, g0):
        assert vertex_order(g0, "degeneracy") == degeneracy_order(g0)[0]

    def test_complete_bipartite_degeneracy(self):
        # K(a,b) has degeneracy min(a, b)
        g = BipartiteGraph([(u, v) for u in range(3) for v in range(5)])
        assert degeneracy_order(g)[1] == 3

    def test_star_degeneracy_one(self):
        g = BipartiteGraph([(0, v) for v in range(6)])
        assert degeneracy_order(g)[1] == 1

    def test_matching_degeneracy_one(self):
        g = BipartiteGraph([(i, i) for i in range(5)])
        assert degeneracy_order(g)[1] == 1

    def test_empty_graph(self):
        order, k = degeneracy_order(BipartiteGraph([]))
        assert order == [] and k == 0

    def test_edgeless_vertices(self):
        g = BipartiteGraph([], n_u=3, n_v=4)
        order, k = degeneracy_order(g)
        assert sorted(order) == [0, 1, 2, 3]
        assert k == 0

    @RELAXED
    @given(g=bipartite_graphs())
    def test_degeneracy_bounds(self, g):
        order, k = degeneracy_order(g)
        assert sorted(order) == list(range(g.n_v))
        max_deg = max(
            [g.degree_u(u) for u in range(g.n_u)]
            + [g.degree_v(v) for v in range(g.n_v)],
            default=0,
        )
        min_deg_active = min(
            [g.degree_u(u) for u in range(g.n_u) if g.degree_u(u)]
            + [g.degree_v(v) for v in range(g.n_v) if g.degree_v(v)],
            default=0,
        )
        assert min_deg_active <= k <= max_deg

    @RELAXED
    @given(g=bipartite_graphs())
    def test_enumeration_correct_under_degeneracy_order(self, g):
        truth = run_mbe(g, "bruteforce").biclique_set()
        assert run_mbe(g, "mbet", order="degeneracy").biclique_set() == truth
        assert run_mbe(g, "oombea", order="degeneracy").biclique_set() == truth
