"""Tests for the unified chaos engine (repro.chaos).

Unit-tests the seeded schedule (determinism, occurrence gating,
round-trip), the disk and network shims in isolation, the invariant
checkers, and one full scenario cell through the runner.  The
scenario-level evidence for the serve/cluster layers lives with those
subsystems (tests/test_serve.py, tests/test_cluster.py) and in the CI
chaos smoke (tools/chaos_smoke.py).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.chaos import DISK_FAULTS, NET_FAULTS, FaultRule, FaultSchedule
from repro.chaos import fs as chaos_fs
from repro.chaos import net as chaos_net
from repro.chaos.invariants import (
    exact_result_set,
    no_duplicates,
    seam_fired,
)


def _drive(schedule, ops):
    """Run a fixed operation sequence; return the fault names decided."""
    return [
        (rule.fault if rule is not None else None)
        for rule in (
            schedule.decide(seam, op, target) for seam, op, target in ops
        )
    ]


OPS = [
    ("disk", "write", "/tmp/x/journal.jsonl"),
    ("disk", "write", "/tmp/x/journal.jsonl"),
    ("disk", "write", "/tmp/x/checkpoint.jsonl"),
    ("net", "GET", "/jobs/j-abc123456789"),
    ("net", "POST", "/slices"),
    ("disk", "write", "/tmp/x/journal.jsonl"),
    ("net", "GET", "/jobs/j-def987654321"),
]


class TestFaultSchedule:
    def test_same_seed_same_trace(self):
        rules = (
            FaultRule("disk", "torn_write", match="journal", op="write",
                      rate=0.5),
            FaultRule("net", "timeout", op="GET", rate=0.5),
        )
        a = FaultSchedule(seed=7, rules=rules)
        b = FaultSchedule(seed=7, rules=rules)
        assert _drive(a, OPS * 20) == _drive(b, OPS * 20)
        assert a.trace() == b.trace()

    def test_different_seeds_differ(self):
        rules = (
            FaultRule("disk", "torn_write", match="journal", op="write",
                      rate=0.5),
        )
        ops = [("disk", "write", f"/tmp/f{i}/journal.jsonl")
               for i in range(64)]
        a = _drive(FaultSchedule(seed=0, rules=rules), ops)
        b = _drive(FaultSchedule(seed=1, rules=rules), ops)
        assert a != b

    def test_after_skips_then_max_fires_caps(self):
        schedule = FaultSchedule(seed=0, rules=(
            FaultRule("disk", "enospc", match="journal", op="write",
                      after=2, max_fires=1),
        ))
        ops = [("disk", "write", "/j/journal.jsonl")] * 5
        assert _drive(schedule, ops) == [
            None, None, "enospc", None, None,
        ]
        assert schedule.fired_by_seam() == {"disk": 1}

    def test_match_and_op_filter(self):
        schedule = FaultSchedule(seed=0, rules=(
            FaultRule("disk", "enospc", match="journal", op="write"),
        ))
        assert schedule.decide("disk", "write", "/a/other.jsonl") is None
        assert schedule.decide("disk", "replace", "/a/journal.jsonl") is None
        assert schedule.decide("net", "write", "/a/journal.jsonl") is None
        rule = schedule.decide("disk", "write", "/a/journal.jsonl")
        assert rule is not None and rule.fault == "enospc"

    def test_round_trip_preserves_decisions(self):
        original = FaultSchedule(
            seed=3,
            rules=(
                FaultRule("disk", "bitflip", match="artifacts",
                          op="write", rate=0.4),
                FaultRule("net", "slow", op="GET", rate=0.3,
                          seconds=0.01),
            ),
            process={"crash_rate": 0.25, "slow_rate": 1.0,
                     "slow_seconds": 0.001},
        )
        payload = json.loads(json.dumps(original.as_dict()))
        clone = FaultSchedule.from_dict(payload)
        ops = [("disk", "write", f"/s/artifacts/e{i}.json")
               for i in range(32)]
        ops += [("net", "GET", f"/jobs/j-{i:012x}") for i in range(32)]
        assert _drive(original, ops) == _drive(clone, ops)

    def test_validation_rejects_bad_rules(self):
        with pytest.raises(ValueError):
            FaultRule("disk", "reset")  # a net fault on the disk seam
        with pytest.raises(ValueError):
            FaultRule("net", "torn_write")
        with pytest.raises(ValueError):
            FaultRule("process", "crash")  # process rides the FaultPlan
        with pytest.raises(ValueError):
            FaultRule("disk", "enospc", rate=1.5)
        with pytest.raises(TypeError):
            FaultSchedule(process={"no_such_knob": 1})
        assert "torn_write" in DISK_FAULTS and "reset" in NET_FAULTS

    def test_process_seam_records_into_the_same_trace(self):
        schedule = FaultSchedule(seed=0, process={"slow_rate": 1.0,
                                                  "slow_seconds": 0.0})
        plan = schedule.to_fault_plan()
        assert plan.decide((4, 0, 2), 0) == "slow"
        plan.apply((4, 0, 2), 0, inline=True)
        fired = schedule.fired_by_seam()
        assert fired.get("process") == 1
        assert schedule.trace()[0]["fault"] == "slow"


class TestDiskShim:
    def _schedule(self, fault, **kw):
        return FaultSchedule(seed=0, rules=(
            FaultRule("disk", fault, match="victim", **kw),
        ))

    def test_inactive_shim_is_a_passthrough(self, tmp_path):
        path = tmp_path / "victim.txt"
        assert not chaos_fs.is_active()
        with chaos_fs.open(path, "w", encoding="utf-8") as handle:
            handle.write("hello\n")
        assert path.read_text() == "hello\n"

    def test_torn_write_persists_a_prefix_and_raises(self, tmp_path):
        path = tmp_path / "victim.txt"
        with chaos_fs.active(self._schedule("torn_write", op="write")):
            handle = chaos_fs.open(path, "w", encoding="utf-8")
            with pytest.raises(OSError):
                handle.write("0123456789abcdef\n")
            handle.close()
        data = path.read_text()
        assert 0 < len(data) < len("0123456789abcdef\n")
        assert "0123456789abcdef\n".startswith(data)

    def test_enospc_writes_nothing(self, tmp_path):
        path = tmp_path / "victim.txt"
        with chaos_fs.active(self._schedule("enospc", op="write")):
            handle = chaos_fs.open(path, "w", encoding="utf-8")
            with pytest.raises(OSError) as excinfo:
                handle.write("data\n")
            handle.close()
        assert excinfo.value.errno == 28  # ENOSPC
        assert path.read_text() == ""

    def test_bitflip_corrupts_silently_same_length(self, tmp_path):
        path = tmp_path / "victim.txt"
        payload = "a" * 64 + "\n"
        with chaos_fs.active(self._schedule("bitflip", op="write")):
            with chaos_fs.open(path, "w", encoding="utf-8") as handle:
                handle.write(payload)  # no exception: the rot is silent
        data = path.read_text()
        assert len(data) == len(payload)
        assert data != payload

    def test_replace_error_and_lost_fsync(self, tmp_path):
        src = tmp_path / "src.txt"
        dst = tmp_path / "victim.txt"
        src.write_text("x")
        schedule = FaultSchedule(seed=0, rules=(
            FaultRule("disk", "replace_error", match="victim",
                      op="replace"),
            FaultRule("disk", "lost_fsync", match="victim", op="fsync"),
        ))
        with chaos_fs.active(schedule):
            with pytest.raises(OSError):
                chaos_fs.replace(src, dst)
            with open(src, "w") as handle:
                # silently dropped instead of hitting the real fsync
                chaos_fs.fsync(handle.fileno(), str(dst))
        assert os.path.exists(src) and not os.path.exists(dst)
        assert schedule.fired_by_seam() == {"disk": 2}


class TestNetShim:
    def _apply(self, schedule, method="GET", path="/jobs/j-1"):
        calls = []

        def send():
            calls.append(1)
            return 200, {"ok": True}

        with chaos_net.active(schedule):
            result = chaos_net.apply("http://w", method, path, send)
        return result, len(calls)

    def _schedule(self, fault, **kw):
        return FaultSchedule(seed=0, rules=(
            FaultRule("net", fault, **kw),
        ))

    def test_reset_never_delivers(self):
        with pytest.raises(chaos_net.ChaosConnectionReset):
            self._apply(self._schedule("reset"))

    def test_timeout_delivers_but_loses_the_response(self):
        calls = []

        def send():
            calls.append(1)
            return 200, {}

        with chaos_net.active(self._schedule("timeout")):
            with pytest.raises(chaos_net.ChaosTimeout):
                chaos_net.apply("http://w", "GET", "/jobs/j-1", send)
        assert calls == [1]  # the ambiguous case: side effects landed

    def test_http_500_swallows_the_request(self):
        (status, body), sends = self._apply(self._schedule("http_500"))
        assert status == 500 and sends == 0
        assert "error" in body

    def test_duplicate_sends_twice(self):
        (status, _body), sends = self._apply(self._schedule("duplicate"))
        assert status == 200 and sends == 2

    def test_slow_delays_then_delivers(self):
        (status, _body), sends = self._apply(
            self._schedule("slow", seconds=0.0)
        )
        assert status == 200 and sends == 1

    def test_exceptions_subclass_what_the_client_catches(self):
        assert issubclass(chaos_net.ChaosConnectionReset, ConnectionError)
        assert issubclass(chaos_net.ChaosTimeout, TimeoutError)


class TestInvariants:
    def test_exact_result_set_reports_missing_and_spurious(self):
        ref = {((0,), (0, 1)), ((1,), (0,))}
        assert exact_result_set(ref, [[[0], [0, 1]], [[1], [0]]]).ok
        bad = exact_result_set(ref, [[[0], [0, 1]], [[9], [9]]])
        assert not bad.ok
        assert "1 missing" in bad.detail and "1 spurious" in bad.detail

    def test_no_duplicates_catches_a_double_merge(self):
        assert no_duplicates([[[0], [1]], [[2], [3]]]).ok
        assert not no_duplicates([[[0], [1]], [[0], [1]]]).ok

    def test_seam_fired_demands_evidence(self):
        schedule = FaultSchedule(seed=0, rules=(
            FaultRule("disk", "enospc", match="journal", op="write"),
        ))
        assert not seam_fired(schedule, "disk").ok
        schedule.decide("disk", "write", "/x/journal.jsonl")
        assert seam_fired(schedule, "disk").ok


class TestRunnerAndCatalogue:
    def test_catalogue_covers_every_seam(self):
        from repro.chaos.scenarios import SCENARIOS

        covered = set()
        for scenario in SCENARIOS.values():
            covered.update(scenario.seams)
        assert covered == {"disk", "net", "process"}

    def test_build_schedule_is_seed_deterministic(self):
        from repro.chaos.scenarios import build_schedule

        for name in ("single_node", "serve_restart", "warm_cache",
                     "federated"):
            assert (
                build_schedule(name, 5).as_dict()
                == build_schedule(name, 5).as_dict()
            )

    def test_warm_cache_cell_end_to_end(self, tmp_path):
        from repro.chaos.runner import run_scenarios
        from repro.obs import MetricRegistry

        registry = MetricRegistry()
        report = tmp_path / "report.jsonl"
        summary = run_scenarios(
            names=["warm_cache"], seeds=(0,),
            report_path=str(report), workdir=str(tmp_path / "cells"),
            registry=registry,
        )
        assert summary["ok"] and summary["cells"] == 1
        assert summary["seams_fired"].get("disk", 0) > 0
        cells = [json.loads(ln) for ln in report.read_text().splitlines()]
        assert len(cells) == 1
        assert cells[0]["scenario"] == "warm_cache" and cells[0]["ok"]
        assert cells[0]["invariants"]
        assert all(inv["ok"] for inv in cells[0]["invariants"])
        from repro.obs.sinks import parse_prometheus_text, prometheus_text

        samples = parse_prometheus_text(prometheus_text(registry))
        assert samples['chaos_scenarios_total{result="pass"}'] == 1
        assert samples['chaos_faults_injected_total{seam="disk"}'] >= 1

    def test_unknown_scenario_is_an_error(self):
        from repro.chaos.runner import run_scenarios

        with pytest.raises(ValueError):
            run_scenarios(names=["nope"])

    def test_runner_captures_a_raising_scenario_as_a_failed_cell(
        self, tmp_path, monkeypatch
    ):
        import repro.chaos.runner as runner_mod

        def boom(name, seed, workdir):
            raise RuntimeError("scenario exploded")

        monkeypatch.setattr(runner_mod, "run_scenario", boom)
        summary = runner_mod.run_scenarios(
            names=["warm_cache"], seeds=(0,),
            workdir=str(tmp_path / "cells"),
        )
        assert not summary["ok"]
        assert summary["failed"] == [
            {"scenario": "warm_cache", "seed": 0}
        ]
        assert "scenario exploded" in summary["reports"][0]["error"]


class TestCLI:
    def test_chaos_run_exit_codes_and_report(self, tmp_path, capsys):
        from repro.cli import main

        report = tmp_path / "r.jsonl"
        metrics = tmp_path / "m.prom"
        code = main([
            "chaos", "run", "--scenario", "warm_cache", "--seed", "4",
            "--report", str(report), "--metrics-out", str(metrics),
            "--workdir", str(tmp_path / "cells"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 cells passed" in out
        assert report.exists()
        assert "chaos_scenarios_total" in metrics.read_text()
        assert main(["chaos", "run", "--scenario", "bogus"]) == 2

    def test_chaos_list_prints_the_catalogue(self, capsys):
        from repro.cli import main

        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("single_node", "serve_restart", "federated",
                     "warm_cache"):
            assert name in out
