"""Tests for dataset statistics."""

from __future__ import annotations

from repro import BipartiteGraph, compute_stats
from repro.bigraph.stats import (
    max_degree_u,
    max_degree_v,
    max_two_hop_u,
    max_two_hop_v,
)


class TestDegreeStats:
    def test_g0_degrees(self, g0):
        assert max_degree_u(g0) == 4  # u1 touches all four v's
        assert max_degree_v(g0) == 4  # v1 touches u0..u3

    def test_g0_two_hop(self, g0):
        assert max_two_hop_u(g0) == 4  # u1 reaches every other u
        assert max_two_hop_v(g0) == 3  # v1 reaches the other three v's

    def test_empty_graph(self):
        g = BipartiteGraph([])
        st = compute_stats(g)
        assert st.n_edges == 0
        assert st.max_degree_u == 0
        assert st.max_two_hop_v == 0
        assert st.density == 0.0

    def test_isolated_vertices_dont_crash(self):
        g = BipartiteGraph([(0, 0)], n_u=3, n_v=3)
        st = compute_stats(g)
        assert st.max_degree_u == 1
        assert st.max_two_hop_u == 0  # nobody shares a neighbour


class TestComputeStats:
    def test_full_row(self, g0):
        st = compute_stats(g0)
        assert (st.n_u, st.n_v, st.n_edges) == (5, 4, 12)
        assert st.density == 12 / 20

    def test_as_row_keys(self, g0):
        row = compute_stats(g0).as_row()
        assert set(row) == {
            "n_u", "n_v", "n_edges", "max_degree_u", "max_degree_v",
            "max_two_hop_u", "max_two_hop_v", "density",
        }

    def test_stats_frozen(self, g0):
        st = compute_stats(g0)
        try:
            st.n_u = 99
            assert False, "GraphStats should be frozen"
        except AttributeError:
            pass

    def test_symmetry_under_swap(self, g0):
        st = compute_stats(g0)
        sw = compute_stats(g0.swap_sides())
        assert st.max_degree_u == sw.max_degree_v
        assert st.max_two_hop_u == sw.max_two_hop_v
        assert st.density == sw.density

    def test_complete_bipartite(self):
        g = BipartiteGraph([(u, v) for u in range(3) for v in range(4)])
        st = compute_stats(g)
        assert st.max_degree_u == 4
        assert st.max_degree_v == 3
        assert st.max_two_hop_u == 2
        assert st.max_two_hop_v == 3
        assert st.density == 1.0
