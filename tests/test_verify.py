"""Tests for the verification helpers."""

from __future__ import annotations

import pytest

from repro import Biclique, is_biclique, is_maximal_biclique, verify_result
from repro.core.verify import VerificationError
from tests.conftest import G0_MAXIMAL


class TestIsBiclique:
    def test_valid(self, g0):
        assert is_biclique(g0, [0, 1], [0, 1])

    def test_missing_edge(self, g0):
        assert not is_biclique(g0, [0, 4], [0])  # u4 not adjacent to v0

    def test_empty_sides_rejected(self, g0):
        assert not is_biclique(g0, [], [0])
        assert not is_biclique(g0, [0], [])


class TestIsMaximal:
    def test_all_g0_maximal(self, g0):
        for b in G0_MAXIMAL:
            assert is_maximal_biclique(g0, b.left, b.right)

    def test_extendable_left(self, g0):
        # ({u0}, {v0, v1, v2}) extends to ({u0, u1}, ...)
        assert not is_maximal_biclique(g0, [0], [0, 1, 2])

    def test_extendable_right(self, g0):
        # ({u0, u1}, {v0, v1}) extends by v2
        assert not is_maximal_biclique(g0, [0, 1], [0, 1])

    def test_non_biclique_is_not_maximal(self, g0):
        assert not is_maximal_biclique(g0, [0, 4], [0])


class TestVerifyResult:
    def test_accepts_correct_set(self, g0):
        assert verify_result(g0, G0_MAXIMAL, expected=G0_MAXIMAL) == 6

    def test_detects_duplicates(self, g0):
        b = next(iter(G0_MAXIMAL))
        with pytest.raises(VerificationError, match="duplicate"):
            verify_result(g0, [b, b])

    def test_detects_non_biclique(self, g0):
        with pytest.raises(VerificationError, match="not a biclique"):
            verify_result(g0, [Biclique.make([0, 4], [0])])

    def test_detects_non_maximal(self, g0):
        with pytest.raises(VerificationError, match="not maximal"):
            verify_result(g0, [Biclique.make([0], [0, 1, 2])])

    def test_detects_non_canonical(self, g0):
        bad = Biclique((1, 0), (0, 1, 2))  # unsorted left, bypasses make()
        with pytest.raises(VerificationError, match="non-canonical"):
            verify_result(g0, [bad])

    def test_detects_missing(self, g0):
        some = list(G0_MAXIMAL)[:4]
        with pytest.raises(VerificationError, match="missing"):
            verify_result(g0, some, expected=G0_MAXIMAL)

    def test_detects_unexpected(self, g0):
        expected = list(G0_MAXIMAL)[:5]
        with pytest.raises(VerificationError, match="unexpected"):
            verify_result(g0, G0_MAXIMAL, expected=expected)

    def test_empty_result_empty_expectation(self, g0):
        assert verify_result(g0, [], expected=[]) == 0
