"""Tests for Bitmap and SignatureSpace."""

from __future__ import annotations

import operator

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.setops.bitmap import Bitmap, SignatureSpace


class TestBitmapConstruction:
    def test_from_elements(self):
        b = Bitmap([0, 3, 5])
        assert sorted(b) == [0, 3, 5]
        assert b.bits == 0b101001

    def test_from_raw_bits(self):
        assert sorted(Bitmap(bits=0b110)) == [1, 2]

    def test_negative_element_rejected(self):
        with pytest.raises(ValueError):
            Bitmap([-1])

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(bits=-1)

    def test_empty(self):
        b = Bitmap()
        assert len(b) == 0
        assert not b


class TestBitmapAlgebra:
    def test_and(self):
        assert Bitmap([1, 2, 3]) & Bitmap([2, 3, 4]) == Bitmap([2, 3])

    def test_or(self):
        assert Bitmap([1]) | Bitmap([2]) == Bitmap([1, 2])

    def test_sub(self):
        assert Bitmap([1, 2, 3]) - Bitmap([2]) == Bitmap([1, 3])

    def test_xor(self):
        assert Bitmap([1, 2]) ^ Bitmap([2, 3]) == Bitmap([1, 3])

    def test_subset_operators(self):
        small, big = Bitmap([1]), Bitmap([1, 2])
        assert small <= big
        assert small < big
        assert not big <= small
        assert small.issubset(big)

    def test_disjoint(self):
        assert Bitmap([1]).isdisjoint(Bitmap([2]))
        assert not Bitmap([1]).isdisjoint(Bitmap([1]))

    def test_contains(self):
        b = Bitmap([4])
        assert 4 in b
        assert 3 not in b
        assert -1 not in b

    def test_hashable(self):
        assert len({Bitmap([1, 2]), Bitmap([2, 1]), Bitmap([3])}) == 2

    def test_foreign_operands_raise_type_error(self):
        # operators return NotImplemented on non-Bitmap operands instead
        # of silently reading a missing ._bits
        b = Bitmap([1, 2])
        for op in [operator.and_, operator.or_, operator.sub, operator.xor]:
            with pytest.raises(TypeError):
                op(b, {1, 2})
        with pytest.raises(TypeError):
            b <= frozenset({1})
        with pytest.raises(TypeError):
            b < [1, 2]

    def test_equality_with_foreign_types_is_false(self):
        assert Bitmap([1]) != {1}
        assert not (Bitmap([1]) == {1})

    def test_to_list_and_repr(self):
        b = Bitmap([9, 2])
        assert b.to_list() == [2, 9]
        assert "2, 9" in repr(b)

    @given(
        st.lists(st.integers(0, 40), unique=True),
        st.lists(st.integers(0, 40), unique=True),
    )
    def test_matches_frozenset_semantics(self, xs, ys):
        bx, by = Bitmap(xs), Bitmap(ys)
        sx, sy = frozenset(xs), frozenset(ys)
        assert set(bx & by) == sx & sy
        assert set(bx | by) == sx | sy
        assert set(bx - by) == sx - sy
        assert set(bx ^ by) == sx ^ sy
        assert (bx <= by) == (sx <= sy)
        assert len(bx) == len(sx)


class TestSignatureSpace:
    def test_positions_follow_sorted_order(self):
        space = SignatureSpace([30, 10, 20])
        assert space.universe == (10, 20, 30)
        assert space.position(10) == 0
        assert space.position(30) == 2

    def test_duplicate_universe_rejected(self):
        with pytest.raises(ValueError):
            SignatureSpace([1, 1])

    def test_len_and_contains(self):
        space = SignatureSpace([5, 7])
        assert len(space) == 2
        assert 5 in space
        assert 6 not in space

    def test_encode_drops_outsiders(self):
        space = SignatureSpace([10, 20, 30])
        assert space.encode([10, 30, 99]) == 0b101

    def test_encode_empty(self):
        assert SignatureSpace([1]).encode([]) == 0

    def test_decode_roundtrip(self):
        space = SignatureSpace([4, 8, 15, 16, 23, 42])
        mask = space.encode([8, 23])
        assert space.decode(mask) == [8, 23]

    def test_decode_rejects_foreign_bits(self):
        space = SignatureSpace([1, 2])
        with pytest.raises(ValueError):
            space.decode(0b100)
        with pytest.raises(ValueError):
            space.decode(-1)

    def test_full_mask(self):
        space = SignatureSpace([3, 1, 2])
        assert space.full_mask == 0b111
        assert space.decode(space.full_mask) == [1, 2, 3]

    def test_decode_bitmap(self):
        space = SignatureSpace([10, 20])
        bm = space.decode_bitmap(0b10)
        assert sorted(bm) == [1]

    @given(st.lists(st.integers(0, 100), min_size=1, unique=True), st.data())
    def test_encode_decode_identity(self, universe, data):
        space = SignatureSpace(universe)
        subset = data.draw(
            st.lists(st.sampled_from(universe), unique=True)
        )
        assert space.decode(space.encode(subset)) == sorted(subset)


class TestWordBoundaryUniverses:
    """Round-trips at 63/64/65-bit universes (uint64 word boundaries).

    The kernel layer packs signatures into 64-bit words; an off-by-one at
    the word boundary would corrupt exactly these widths.  The Python-int
    path has no words at all, so agreement between the two pins both.
    """

    @pytest.mark.parametrize("n_bits", [63, 64, 65, 127, 128, 129])
    def test_encode_decode_roundtrip(self, n_bits):
        universe = [3 * i + 1 for i in range(n_bits)]  # non-contiguous ids
        space = SignatureSpace(universe)
        assert space.full_mask == (1 << n_bits) - 1
        boundary_subsets = [
            [],
            universe,
            [universe[0]],
            [universe[-1]],
            universe[::2],
            universe[-2:],
        ]
        for subset in boundary_subsets:
            mask = space.encode(subset)
            assert space.decode(mask) == sorted(subset)
        # the top bit alone must survive the word edge
        top = space.encode([universe[-1]])
        assert top == 1 << (n_bits - 1)
        assert space.decode(top) == [universe[-1]]

    @pytest.mark.parametrize("n_bits", [63, 64, 65])
    def test_packed_rows_agree_with_int_masks(self, n_bits):
        universe = list(range(n_bits))
        space = SignatureSpace(universe)
        subsets = [universe[k:] for k in range(0, n_bits, 7)] + [[], universe]
        matrix = space.encode_rows(subsets)
        for row, subset in zip(matrix, subsets):
            assert space.decode_row(row) == sorted(subset)
            assert space.encode(subset) == int.from_bytes(
                row.tobytes(), "little"
            )


class TestBitmapWordBoundaryAlgebra:
    @given(
        st.lists(st.sampled_from([0, 1, 62, 63, 64, 65, 126, 127, 128, 129]),
                 unique=True),
        st.lists(st.sampled_from([0, 1, 62, 63, 64, 65, 126, 127, 128, 129]),
                 unique=True),
    )
    def test_matches_frozenset_at_word_edges(self, xs, ys):
        bx, by = Bitmap(xs), Bitmap(ys)
        sx, sy = frozenset(xs), frozenset(ys)
        assert set(bx & by) == sx & sy
        assert set(bx | by) == sx | sy
        assert set(bx - by) == sx - sy
        assert set(bx ^ by) == sx ^ sy
        assert (bx <= by) == (sx <= sy)
        assert (bx < by) == (sx < sy)
        assert bx.issubset(by) == sx.issubset(sy)
        assert bx.isdisjoint(by) == sx.isdisjoint(sy)
        assert (bx == by) == (sx == sy)
        assert len(bx) == len(sx)
        assert bx.to_list() == sorted(sx)
