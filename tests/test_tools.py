"""Tests for the repository tooling (tools/build_experiments_md.py)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = ROOT / "tools" / "build_experiments_md.py"
BENCH_SCRIPT = ROOT / "tools" / "bench_snapshot.py"


def run_tool(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


class TestBuildExperimentsMd:
    def test_usage_without_args(self):
        proc = run_tool()
        assert proc.returncode == 2
        assert "Usage" in proc.stdout or "Assemble" in proc.stdout

    def test_assembles_preamble_and_body(self, tmp_path):
        source = tmp_path / "harness.md"
        source.write_text("### R-T1: Something\n\n\n\n| a |\n|---|\n| 1 |\n")
        target = tmp_path / "out.md"
        proc = run_tool(str(source), str(target))
        assert proc.returncode == 0
        text = target.read_text()
        assert text.startswith("# EXPERIMENTS")
        assert "### R-T1: Something" in text
        # triple blank lines collapsed
        assert "\n\n\n" not in text

    def test_existing_experiments_md_is_well_formed(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert text.count("### R-") == 16
        assert "Verdict" in text
        # every experiment id in the summary table has a section
        for exp_id in ("R-T1", "R-T2", "R-F1", "R-F10", "R-E1", "R-E4"):
            assert f"### {exp_id}:" in text


class TestBenchSnapshot:
    def test_writes_dated_json_with_metrics(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(BENCH_SCRIPT),
             "--out", str(tmp_path), "--date", "2026-01-02",
             "--datasets", "mti", "--algorithms", "mbet",
             "--time-limit", "30",
             # the full-zoo crossover matrix takes minutes; one small
             # dataset x two engines exercises the code path cheaply
             "--crossover-datasets", "mti",
             "--crossover-engines", "mbet,mbea"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        target = tmp_path / "BENCH_2026-01-02.json"
        assert target.exists()
        import json

        doc = json.loads(target.read_text())
        assert doc["date"] == "2026-01-02"
        assert doc["datasets"] == ["mti"]
        (record,) = doc["records"]
        assert record["algorithm"] == "mbet"
        assert record["status"] == "ok"
        assert record["count"] == 2341
        # every row carries the observability snapshot
        assert record["metrics"]["counters"]["mbe_maximal_total"] == 2341
        assert "mbe_run_seconds" in record["metrics"]["histograms"]
        # the planner's calibration block: one cell per dataset x engine,
        # each carrying the fit_coefficients record shape
        cells = doc["crossover"]["cells"]
        assert {c["engine"] for c in cells} == {"mbet", "mbea"}
        for cell in cells:
            assert cell["dataset"] == "mti"
            assert cell["complete"] and cell["count"] == 2341
            assert cell["features"]["n_edges"] > 0
