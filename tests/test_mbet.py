"""Tests specific to MBET (flags, stats, trie behaviour)."""

from __future__ import annotations

import random

import pytest

from repro import run_mbe
from repro.core.mbet import MBET, _ListQ, _TrieQ
from tests.conftest import G0_MAXIMAL, random_bigraph


class TestFeatureFlags:
    @pytest.mark.parametrize("flags", [
        {"use_trie": False},
        {"use_merge": False},
        {"use_sort": False},
        {"use_trie": False, "use_merge": False, "use_sort": False},
    ])
    def test_ablations_stay_exact(self, g0, flags):
        assert run_mbe(g0, "mbet", **flags).biclique_set() == G0_MAXIMAL

    @pytest.mark.parametrize("flags", [
        {},
        {"use_trie": False},
        {"use_merge": False},
        {"use_sort": False},
    ])
    def test_ablations_agree_on_random_graphs(self, flags):
        rng = random.Random(42)
        for _ in range(60):
            g = random_bigraph(rng)
            truth = run_mbe(g, "bruteforce").biclique_set()
            assert run_mbe(g, "mbet", **flags).biclique_set() == truth

    @pytest.mark.parametrize("order", ["natural", "degree", "degree_desc",
                                       "unilateral", "two_hop", "random"])
    def test_every_order_is_exact(self, g0, order):
        assert run_mbe(g0, "mbet", order=order).biclique_set() == G0_MAXIMAL


class TestStatsAccounting:
    def test_subtrees_counted(self, g0):
        result = run_mbe(g0, "mbet", order="natural")
        # G0 in natural order has pruned subtrees (v2 contained in v1).
        assert 0 < result.stats.subtrees <= g0.n_v

    def test_merging_reported_on_merged_graph(self):
        # v1 and v2 have identical neighbourhoods {u0, u1}; as candidates
        # in v0's subtree they share a signature and must merge.
        from repro import BipartiteGraph

        g = BipartiteGraph(
            [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        )
        result = run_mbe(g, "mbet", order="natural")
        assert result.stats.merged_candidates >= 1
        assert result.count == 2  # full graph x v0, {u0,u1} x {v0,v1,v2}

    def test_trie_peak_positive_when_used(self, g0):
        result = run_mbe(g0, "mbet", order="natural")
        assert result.stats.trie_peak_nodes >= 1

    def test_no_trie_stats_when_disabled(self, g0):
        result = run_mbe(g0, "mbet", use_trie=False)
        assert result.stats.trie_peak_nodes == 0
        assert result.stats.trie_pruned == 0

    def test_maximal_equals_count(self, g0):
        result = run_mbe(g0, "mbet")
        assert result.stats.maximal == result.count == 6


class TestTrieQStore:
    def test_insert_query_remove(self):
        store = _TrieQ(max_nodes=None)
        token = store.insert(0b110)
        assert store.has_superset(0b100)
        store.remove(token)
        assert not store.has_superset(0b100)

    def test_overflow_path(self):
        store = _TrieQ(max_nodes=2)
        t1 = store.insert(0b1)  # fits (root + 1 node)
        t2 = store.insert(0b111)  # rejected -> overflow
        assert t1[1] and not t2[1]
        assert store.has_superset(0b101)  # found via overflow scan
        store.remove(t2)
        assert not store.has_superset(0b101)

    def test_overflow_multiplicity(self):
        store = _TrieQ(max_nodes=1)
        t1 = store.insert(0b11)
        t2 = store.insert(0b11)
        store.remove(t1)
        assert store.has_superset(0b11)
        store.remove(t2)
        assert not store.has_superset(0b11)


class TestListQStore:
    def test_lifo_tokens(self):
        store = _ListQ()
        t1 = store.insert(0b1)
        t2 = store.insert(0b10)
        assert store.has_superset(0b10)
        store.remove(t2)
        store.remove(t1)
        assert store.masks == []

    def test_scan_counter(self):
        store = _ListQ()
        store.insert(0b1)
        store.insert(0b10)
        store.has_superset(0b1)
        assert store.checks == 2


class TestMBETConstruction:
    def test_default_flags(self):
        algo = MBET()
        assert algo.use_trie and algo.use_merge and algo.use_sort
        assert algo.trie_max_nodes is None

    def test_name_registered(self):
        assert MBET.name == "mbet"
