"""Tests for the BipartiteGraph data structure."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro import BipartiteGraph
from tests.strategies import bipartite_graphs


class TestConstruction:
    def test_shape(self, g0):
        assert (g0.n_u, g0.n_v, g0.n_edges) == (5, 4, 12)

    def test_inferred_sizes(self):
        g = BipartiteGraph([(2, 5)])
        assert (g.n_u, g.n_v) == (3, 6)

    def test_declared_sizes_allow_isolated(self):
        g = BipartiteGraph([(0, 0)], n_u=4, n_v=4)
        assert g.degree_u(3) == 0
        assert g.degree_v(3) == 0

    def test_empty_graph(self):
        g = BipartiteGraph([])
        assert (g.n_u, g.n_v, g.n_edges) == (0, 0, 0)
        assert list(g.edges()) == []

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BipartiteGraph([(0, 0), (0, 0)])

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            BipartiteGraph([(-1, 0)])

    def test_id_exceeding_declared_size_rejected(self):
        with pytest.raises(ValueError):
            BipartiteGraph([(5, 0)], n_u=3)

    def test_repr(self, g0):
        assert "|U|=5" in repr(g0)


class TestAdjacency:
    def test_neighbors_sorted(self, g0):
        assert g0.neighbors_v(1) == (0, 1, 2, 3)
        assert g0.neighbors_u(1) == (0, 1, 2, 3)

    def test_neighbor_sets_cached(self, g0):
        first = g0.neighbors_v_set(2)
        assert first == frozenset({0, 1, 3})
        assert g0.neighbors_v_set(2) is first  # cached object

    def test_neighbors_u_set(self, g0):
        assert g0.neighbors_u_set(4) == frozenset({3})

    def test_degrees(self, g0):
        assert [g0.degree_v(v) for v in range(4)] == [2, 4, 3, 3]
        assert [g0.degree_u(u) for u in range(5)] == [3, 4, 1, 3, 1]

    def test_has_edge(self, g0):
        assert g0.has_edge(0, 0)
        assert not g0.has_edge(4, 0)

    def test_edges_iteration_order(self, g0):
        edges = list(g0.edges())
        assert edges == sorted(edges)
        assert len(edges) == 12


class TestDerivedNeighbourhoods:
    def test_two_hop_v(self, g0):
        # v0 = {u0, u1}; u0 and u1 together touch v0..v3
        assert g0.two_hop_v(0) == [1, 2, 3]

    def test_two_hop_excludes_self(self, g0):
        assert 1 not in g0.two_hop_v(1)

    def test_two_hop_u(self, g0):
        assert g0.two_hop_u(2) == [0, 1, 3]  # via v1

    def test_two_hop_isolated(self):
        g = BipartiteGraph([(0, 0)], n_u=2, n_v=2)
        assert g.two_hop_u(1) == []
        assert g.two_hop_v(1) == []

    def test_common_neighbors_of_vs(self, g0):
        assert g0.common_neighbors_of_vs([0, 1]) == [0, 1]
        assert g0.common_neighbors_of_vs([0, 3]) == [1]

    def test_common_neighbors_of_us(self, g0):
        assert g0.common_neighbors_of_us([0, 1]) == [0, 1, 2]

    def test_common_neighbors_empty_query_rejected(self, g0):
        with pytest.raises(ValueError):
            g0.common_neighbors_of_vs([])

    @given(bipartite_graphs())
    def test_two_hop_symmetry(self, g):
        # w ∈ N2(v)  ⟺  v ∈ N2(w)
        for v in range(g.n_v):
            for w in g.two_hop_v(v):
                assert v in g.two_hop_v(w)


class TestTransforms:
    def test_swap_sides_roundtrip(self, g0):
        swapped = g0.swap_sides()
        assert (swapped.n_u, swapped.n_v) == (4, 5)
        assert swapped.swap_sides() == g0

    def test_swap_preserves_adjacency(self, g0):
        swapped = g0.swap_sides()
        assert swapped.neighbors_u(1) == g0.neighbors_v(1)

    def test_oriented_smaller_v_noop(self, g0):
        oriented, swapped = g0.oriented_smaller_v()
        assert not swapped and oriented is g0

    def test_oriented_smaller_v_swaps(self, g0):
        big_v = g0.swap_sides()  # now |V| = 5 > |U| = 4
        oriented, swapped = big_v.oriented_smaller_v()
        assert swapped
        assert oriented.n_v <= oriented.n_u

    def test_induced_subgraph(self, g0):
        sub, u_map, v_map = g0.induced_subgraph([0, 1], [0, 1])
        assert (sub.n_u, sub.n_v) == (2, 2)
        assert sub.n_edges == 4  # u0,u1 x v0,v1 is complete in G0
        assert u_map == {0: 0, 1: 1}
        assert v_map == {0: 0, 1: 1}

    def test_induced_subgraph_relabels(self, g0):
        sub, u_map, v_map = g0.induced_subgraph([3, 4], [3])
        assert sub.n_edges == 2
        assert u_map == {3: 0, 4: 1}
        assert v_map == {3: 0}

    def test_equality_and_hash(self, g0):
        same = BipartiteGraph(list(g0.edges()), n_u=5, n_v=4)
        assert same == g0
        assert hash(same) == hash(g0)
        assert g0 != BipartiteGraph([(0, 0)])
