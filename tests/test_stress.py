"""Mid-size randomized cross-checks — beyond brute force's reach.

Brute force caps the agreement properties at ~8 vertices per side.  These
tests cross-validate the algorithms against *each other* on graphs two
orders of magnitude larger, where different bugs (index arithmetic in the
decomposition, trie removal under deep backtracking, slice boundaries in
the parallel driver) would surface.  Counts, per-dataset, must agree to
the last biclique across every implementation.
"""

from __future__ import annotations

import pytest

from repro import (
    planted_bicliques,
    powerlaw_bipartite,
    run_mbe,
    run_mbe_per_component,
)

GRAPHS = {
    "powerlaw-mid": powerlaw_bipartite(800, 300, 3000, 2.0, seed=41),
    "planted-mid": planted_bicliques(400, 200, 90, (2, 6), (2, 6), 500, seed=42),
    "hubs": powerlaw_bipartite(300, 120, 2500, 1.7, seed=43),
}


@pytest.fixture(scope="module")
def reference_counts():
    return {name: run_mbe(g, "mbet", collect=False).count
            for name, g in GRAPHS.items()}


@pytest.mark.parametrize("name", sorted(GRAPHS))
@pytest.mark.parametrize("algo", ["imbea", "pmbe", "oombea", "mbet_iter", "mbetm"])
def test_counts_agree_at_scale(name, algo, reference_counts):
    result = run_mbe(GRAPHS[name], algo, collect=False)
    assert result.count == reference_counts[name]


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_parallel_split_at_scale(name, reference_counts):
    result = run_mbe(
        GRAPHS[name], "parallel", workers=2, bound_height=4, bound_size=64,
        collect=False,
    )
    assert result.count == reference_counts[name]


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_tiny_trie_budget_at_scale(name, reference_counts):
    result = run_mbe(GRAPHS[name], "mbetm", max_nodes=8, collect=False)
    assert result.count == reference_counts[name]
    assert result.stats.trie_peak_nodes <= 8


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_component_split_at_scale(name, reference_counts):
    bicliques, _per = run_mbe_per_component(GRAPHS[name], "mbet")
    assert len(bicliques) == reference_counts[name]
    assert len(set(bicliques)) == len(bicliques)


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_collected_results_are_duplicate_free(name, reference_counts):
    result = run_mbe(GRAPHS[name], "mbet")
    assert len(result.biclique_set()) == reference_counts[name]


def test_constrained_equals_filter_at_scale(reference_counts):
    g = GRAPHS["planted-mid"]
    full = run_mbe(g, "mbet").bicliques
    want = {b for b in full if len(b.left) >= 3 and len(b.right) >= 3}
    got = run_mbe(g, "mbet", min_left=3, min_right=3).biclique_set()
    assert got == want


def test_orders_agree_at_scale(reference_counts):
    g = GRAPHS["hubs"]
    expected = reference_counts["hubs"]
    for order in ("natural", "degree_desc", "unilateral", "degeneracy"):
        assert run_mbe(g, "mbet", order=order, collect=False).count == expected
