"""Tests for merge-path partitioned set union."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.setops.intersect_path import merge_path_partitions, partitioned_union
from repro.setops.sorted_ops import union
from tests.strategies import sorted_unique_ints


class TestPartitions:
    def test_lane_count_validation(self):
        with pytest.raises(ValueError):
            merge_path_partitions([1], [2], 0)

    def test_endpoints(self):
        a, b = [1, 3, 5], [2, 3, 9]
        pts = merge_path_partitions(a, b, 3)
        assert pts[0] == (0, 0)
        assert pts[-1] == (len(a), len(b))

    def test_monotone_diagonals(self):
        a, b = list(range(0, 40, 2)), list(range(1, 30, 3))
        pts = merge_path_partitions(a, b, 7)
        diagonals = [x + y for x, y in pts]
        assert diagonals == sorted(diagonals)
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            assert x1 >= x0 and y1 >= y0

    @given(sorted_unique_ints(), sorted_unique_ints(), st.integers(1, 9))
    def test_splits_lie_on_the_merge_path(self, a, b, lanes):
        # Validity conditions of the A-first merge convention.
        for x, y in merge_path_partitions(a, b, lanes):
            if x > 0 and y < len(b):
                assert a[x - 1] <= b[y]
            if y > 0 and x < len(a):
                assert b[y - 1] < a[x]


class TestPartitionedUnion:
    def test_known_example(self):
        # The worked warp example: three lanes over overlapping sets.
        a = [2, 4, 6, 8, 10, 12]
        b = [1, 2, 5, 7, 8, 9]
        assert partitioned_union(a, b, 3) == [1, 2, 4, 5, 6, 7, 8, 9, 10, 12]

    def test_single_lane_is_plain_union(self):
        a, b = [1, 5], [1, 2, 9]
        assert partitioned_union(a, b, 1) == union(a, b)

    def test_more_lanes_than_elements(self):
        assert partitioned_union([1], [2], 16) == [1, 2]

    def test_empty_inputs(self):
        assert partitioned_union([], [], 4) == []
        assert partitioned_union([1, 2], [], 4) == [1, 2]
        assert partitioned_union([], [3], 4) == [3]

    def test_identical_inputs(self):
        a = list(range(20))
        assert partitioned_union(a, a, 5) == a

    @given(sorted_unique_ints(), sorted_unique_ints(), st.integers(1, 33))
    def test_equals_union_for_every_lane_count(self, a, b, lanes):
        assert partitioned_union(a, b, lanes) == sorted(set(a) | set(b))

    @given(sorted_unique_ints(max_size=40, max_value=60), st.integers(2, 8))
    def test_heavy_overlap(self, a, lanes):
        b = a[::2]
        assert partitioned_union(a, b, lanes) == a

    def test_lane_outputs_are_disjoint_slices(self):
        # Each lane produces a contiguous slice of the final output: their
        # concatenation must be sorted (checked) and cover the union.
        a = list(range(0, 50, 2))
        b = list(range(0, 50, 3))
        for lanes in (2, 3, 5, 11):
            out = partitioned_union(a, b, lanes)
            assert out == sorted(out)
            assert out == sorted(set(a) | set(b))


class TestLaneOvercommit:
    """Boundary sweep: more lanes than merge-grid diagonals.

    When ``lanes > len(a) + len(b)`` some split points must coincide; the
    contract is that a duplicated split point denotes an *empty* lane —
    the output must contain no duplicated elements.
    """

    def test_duplicate_split_points_exist_and_are_benign(self):
        a, b = [1, 3], [2]
        lanes = 9  # > len(a) + len(b) = 3
        pts = merge_path_partitions(a, b, lanes)
        assert len(pts) == lanes + 1
        assert pts[0] == (0, 0) and pts[-1] == (len(a), len(b))
        # with 3 diagonals and 9 lanes, pigeonhole forces duplicates
        assert len(set(pts)) < len(pts)
        # every duplicated adjacent pair is an empty lane contributing
        # nothing; the union must come out exact, not repeated
        assert partitioned_union(a, b, lanes) == [1, 2, 3]

    def test_every_adjacent_pair_is_monotone(self):
        pts = merge_path_partitions([5], [5], 12)
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            assert x0 <= x1 and y0 <= y1

    @given(
        sorted_unique_ints(max_size=6, max_value=30),
        sorted_unique_ints(max_size=6, max_value=30),
        st.integers(1, 64),
    )
    def test_union_exact_under_any_overcommit(self, a, b, lanes):
        out = partitioned_union(a, b, lanes)
        assert out == sorted(set(a) | set(b))
        assert len(out) == len(set(out))  # no duplicated output

    @given(st.integers(1, 50))
    def test_both_empty_any_lane_count(self, lanes):
        assert merge_path_partitions([], [], lanes) == [(0, 0)] * (lanes + 1)
        assert partitioned_union([], [], lanes) == []
