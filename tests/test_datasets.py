"""Tests for the dataset zoo."""

from __future__ import annotations

import pytest

from repro import run_mbe
from repro.datasets import DATASETS, large_names, load, names, spec


class TestRegistry:
    def test_thirteen_datasets(self):
        assert len(names()) == 13

    def test_roster_order_preserved(self):
        assert names()[0] == "mti"
        assert names()[-1] == "dbt"

    def test_large_names_is_rear_half(self):
        assert large_names() == names()[6:]
        assert "dbt" in large_names()

    def test_spec_lookup(self):
        sp = spec("mti")
        assert sp.models.startswith("MovieLens")
        assert sp.reference_shape == (16_528, 7_601, 71_154)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            spec("nope")
        with pytest.raises(ValueError, match="unknown dataset"):
            load("nope")

    def test_counts_strictly_ascend(self):
        counts = [spec(k).approx_bicliques for k in names()]
        assert counts == sorted(counts)
        assert len(set(counts)) == len(counts)

    def test_every_spec_is_frozen(self):
        sp = spec("yg")
        with pytest.raises(AttributeError):
            sp.seed = 99


class TestBuilding:
    def test_deterministic(self):
        assert spec("mti").build() == spec("mti").build()

    def test_load_caches(self):
        assert load("mti") is load("mti")

    def test_load_uncached_builds_fresh(self):
        a = load("mti", cache=False)
        assert a == load("mti")
        assert a is not load("mti", cache=False)

    def test_shapes_match_params(self):
        for key in names():
            sp = spec(key)
            g = load(key)
            assert g.n_u == sp.params["n_u"]
            assert g.n_v == sp.params["n_v"]
            assert g.n_edges > 0

    def test_unknown_kind_rejected(self):
        from dataclasses import replace

        broken = replace(spec("mti"), kind="weird")
        with pytest.raises(ValueError, match="unknown dataset kind"):
            broken.build()


class TestCalibration:
    @pytest.mark.parametrize("key", ["mti", "yg", "ee"])
    def test_recorded_biclique_counts_are_exact(self, key):
        # The calibration counts recorded in the specs are ground truth for
        # the experiments; verify a sample end-to-end.
        result = run_mbe(load(key), "mbet", collect=False)
        assert result.count == spec(key).approx_bicliques

    def test_every_recorded_count_is_exact(self):
        # The whole-zoo calibration check (tens of seconds): generator or
        # ordering drift anywhere breaks this loudly.
        for key in names():
            result = run_mbe(load(key), "mbet", collect=False)
            assert result.count == spec(key).approx_bicliques, key

    def test_mixed_kind_unions_block_and_hub_edges(self):
        sp = spec("gh")
        g = load("gh")
        # must contain more edges than the noise component alone
        assert g.n_edges > sp.params["noise_edges"] // 2

    def test_registry_is_the_specs(self):
        assert set(DATASETS) == set(names())
