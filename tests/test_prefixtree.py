"""Tests for the prefix tree (superset queries, removal, budget)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.prefixtree import PrefixTree
from tests.strategies import masks


def linear_has_superset(stored: list[int], query: int) -> bool:
    return any(m & query == query for m in stored)


class TestInsertRemove:
    def test_empty_tree(self):
        tree = PrefixTree()
        assert len(tree) == 0
        assert tree.n_nodes == 1  # just the root
        assert not tree.has_superset(0b1)

    def test_insert_and_contains(self):
        tree = PrefixTree()
        tree.insert(0b1011)
        assert tree.contains(0b1011)
        assert not tree.contains(0b1010)
        assert len(tree) == 1

    def test_multiplicity(self):
        tree = PrefixTree()
        tree.insert(0b11)
        tree.insert(0b11)
        assert len(tree) == 2
        tree.remove(0b11)
        assert tree.contains(0b11)
        tree.remove(0b11)
        assert not tree.contains(0b11)

    def test_remove_missing_raises(self):
        tree = PrefixTree()
        tree.insert(0b1)
        with pytest.raises(KeyError):
            tree.remove(0b10)
        with pytest.raises(KeyError):
            tree.remove(0b11)  # prefix exists, terminal does not

    def test_remove_frees_nodes(self):
        tree = PrefixTree()
        tree.insert(0b111)
        nodes_full = tree.n_nodes
        tree.remove(0b111)
        assert tree.n_nodes == 1 < nodes_full

    def test_shared_prefix_nodes(self):
        tree = PrefixTree()
        tree.insert(0b0011)
        before = tree.n_nodes
        tree.insert(0b0111)  # shares the two low bits
        assert tree.n_nodes == before + 1

    def test_remove_keeps_shared_prefix(self):
        tree = PrefixTree()
        tree.insert(0b0011)
        tree.insert(0b0111)
        tree.remove(0b0111)
        assert tree.contains(0b0011)
        assert not tree.contains(0b0111)

    def test_empty_mask_stored(self):
        tree = PrefixTree()
        tree.insert(0)
        assert tree.contains(0)
        assert tree.has_superset(0)
        tree.remove(0)
        assert not tree.has_superset(0)

    def test_negative_mask_rejected(self):
        tree = PrefixTree()
        with pytest.raises(ValueError):
            tree.insert(-1)
        with pytest.raises(ValueError):
            tree.has_superset(-1)

    def test_clear(self):
        tree = PrefixTree()
        tree.insert(0b101)
        tree.clear()
        assert len(tree) == 0
        assert tree.n_nodes == 1


class TestSupersetQueries:
    def test_exact_match_is_superset(self):
        tree = PrefixTree()
        tree.insert(0b110)
        assert tree.has_superset(0b110)

    def test_proper_superset(self):
        tree = PrefixTree()
        tree.insert(0b1110)
        assert tree.has_superset(0b0100)
        assert tree.has_superset(0b1010)

    def test_subset_is_not_superset(self):
        tree = PrefixTree()
        tree.insert(0b0100)
        assert not tree.has_superset(0b1100)

    def test_disjoint(self):
        tree = PrefixTree()
        tree.insert(0b0011)
        assert not tree.has_superset(0b0100)

    def test_query_zero_matches_any_stored(self):
        tree = PrefixTree()
        assert not tree.has_superset(0)
        tree.insert(0b1)
        assert tree.has_superset(0)

    def test_superset_via_extra_low_bits(self):
        # Stored set has extra elements *below* the query's lowest bit —
        # exercises the extra-element descent.
        tree = PrefixTree()
        tree.insert(0b1101)
        assert tree.has_superset(0b1100)

    def test_many_distractors(self):
        tree = PrefixTree()
        for i in range(20):
            tree.insert(1 << i)
        assert not tree.has_superset(0b11)
        tree.insert(0b11)
        assert tree.has_superset(0b11)

    @given(st.lists(masks(), max_size=40), masks())
    def test_matches_linear_scan(self, stored, query):
        tree = PrefixTree()
        for m in stored:
            tree.insert(m)
        assert tree.has_superset(query) == linear_has_superset(stored, query)

    @given(st.lists(masks(), min_size=1, max_size=30), st.data())
    def test_matches_linear_scan_after_removals(self, stored, data):
        tree = PrefixTree()
        for m in stored:
            tree.insert(m)
        to_remove = data.draw(
            st.lists(st.sampled_from(stored), max_size=len(stored))
        )
        remaining = list(stored)
        for m in to_remove:
            if m in remaining:
                tree.remove(m)
                remaining.remove(m)
        query = data.draw(masks())
        assert tree.has_superset(query) == linear_has_superset(remaining, query)

    def test_randomized_interleaving(self):
        rng = random.Random(0)
        tree = PrefixTree()
        shadow: list[int] = []
        for _ in range(3000):
            action = rng.random()
            if action < 0.5 or not shadow:
                m = rng.getrandbits(24)
                tree.insert(m)
                shadow.append(m)
            elif action < 0.8:
                m = shadow.pop(rng.randrange(len(shadow)))
                tree.remove(m)
            else:
                q = rng.getrandbits(rng.choice([4, 8, 24]))
                assert tree.has_superset(q) == linear_has_superset(shadow, q)
        assert len(tree) == len(shadow)


class TestBudget:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            PrefixTree(max_nodes=0)

    def test_rejects_when_full(self):
        tree = PrefixTree(max_nodes=4)
        assert tree.insert(0b111)  # needs 3 nodes + root
        assert not tree.insert(0b111000)  # would blow the budget
        assert tree.rejected_inserts == 1
        assert len(tree) == 1

    def test_rejected_insert_changes_nothing(self):
        tree = PrefixTree(max_nodes=3)
        tree.insert(0b11)
        nodes = tree.n_nodes
        assert not tree.insert(0b11100)
        assert tree.n_nodes == nodes
        assert not tree.contains(0b11100)

    def test_budget_never_exceeded(self):
        rng = random.Random(2)
        tree = PrefixTree(max_nodes=32)
        for _ in range(500):
            tree.insert(rng.getrandbits(30))
            assert tree.n_nodes <= 32

    def test_peak_tracked(self):
        tree = PrefixTree()
        tree.insert(0b1111)
        tree.remove(0b1111)
        assert tree.peak_nodes == 5
        assert tree.n_nodes == 1


class TestInstrumentation:
    def test_query_counters_advance(self):
        tree = PrefixTree()
        tree.insert(0b101)
        tree.insert(0b011)
        tree.has_superset(0b001)
        assert tree.queries == 1
        assert tree.scan_equivalent == 2
        assert tree.node_visits >= 1
