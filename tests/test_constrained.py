"""Tests for size-constrained ("large MBE") enumeration."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import run_mbe
from repro.core.mbet import MBET
from tests.conftest import G0_MAXIMAL
from tests.strategies import bipartite_graphs

RELAXED = settings(
    max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestValidation:
    def test_thresholds_must_be_positive(self):
        with pytest.raises(ValueError):
            MBET(min_left=0)
        with pytest.raises(ValueError):
            MBET(min_right=-1)

    def test_defaults_are_unconstrained(self, g0):
        assert run_mbe(g0, "mbet", min_left=1, min_right=1).count == 6


class TestKnownAnswers:
    def test_g0_min_left_two(self, g0):
        got = run_mbe(g0, "mbet", min_left=2).biclique_set()
        assert got == {b for b in G0_MAXIMAL if len(b.left) >= 2}
        assert len(got) == 5

    def test_g0_min_right_two(self, g0):
        got = run_mbe(g0, "mbet", min_right=2).biclique_set()
        assert got == {b for b in G0_MAXIMAL if len(b.right) >= 2}

    def test_g0_both_thresholds(self, g0):
        got = run_mbe(g0, "mbet", min_left=2, min_right=2).biclique_set()
        assert got == {
            b for b in G0_MAXIMAL if len(b.left) >= 2 and len(b.right) >= 2
        }

    def test_unsatisfiable_threshold(self, g0):
        assert run_mbe(g0, "mbet", min_left=100).count == 0
        assert run_mbe(g0, "mbet", min_right=100).count == 0

    def test_pruning_counter_advances(self, g0):
        result = run_mbe(g0, "mbet", min_left=3, min_right=2, collect=False)
        assert result.stats.threshold_pruned > 0


class TestPruningIsSound:
    @pytest.mark.parametrize("algo", ["mbet", "mbet_iter", "mbetm"])
    @pytest.mark.parametrize("p,q", [(2, 1), (1, 2), (2, 2), (3, 3)])
    def test_equals_filtered_bruteforce(self, algo, p, q, g0):
        truth = {
            b
            for b in run_mbe(g0, "bruteforce").biclique_set()
            if len(b.left) >= p and len(b.right) >= q
        }
        assert run_mbe(g0, algo, min_left=p, min_right=q).biclique_set() == truth

    @RELAXED
    @given(g=bipartite_graphs(), p=st.integers(1, 4), q=st.integers(1, 4))
    def test_property_filtered_bruteforce(self, g, p, q):
        truth = {
            b
            for b in run_mbe(g, "bruteforce").biclique_set()
            if len(b.left) >= p and len(b.right) >= q
        }
        got = run_mbe(g, "mbet", min_left=p, min_right=q).biclique_set()
        assert got == truth

    @RELAXED
    @given(g=bipartite_graphs())
    def test_pruned_run_does_less_work(self, g):
        full = run_mbe(g, "mbet", collect=False)
        constrained = run_mbe(
            g, "mbet", min_left=3, min_right=3, collect=False
        )
        assert constrained.stats.nodes <= full.stats.nodes


class TestParallelConstrained:
    def test_root_slices_respect_thresholds(self, g0):
        # Constrained options flow through worker construction: a
        # constrained parallel run matches the constrained serial run.
        for min_left, min_right in [(2, 1), (1, 2), (2, 2), (3, 2)]:
            want = run_mbe(
                g0, "mbet", min_left=min_left, min_right=min_right
            ).biclique_set()
            got = run_mbe(
                g0, "parallel", workers=1,
                min_left=min_left, min_right=min_right,
            )
            assert got.biclique_set() == want
            assert got.count == len(want)

    def test_thresholds_with_forced_slicing(self, g0):
        # bound_height/bound_size force per-root slicing; the min_right
        # gate in _run_root_slice must not double- or zero-report roots
        want = run_mbe(g0, "mbet", min_left=2, min_right=2).biclique_set()
        got = run_mbe(
            g0, "parallel", workers=1, bound_height=1, bound_size=1,
            min_left=2, min_right=2,
        )
        assert got.biclique_set() == want
        assert got.count == len(want)

    def test_default_remains_unconstrained(self, g0):
        assert run_mbe(g0, "parallel", workers=1).count == 6

    def test_invalid_thresholds_rejected(self):
        from repro.core.parallel import ParallelMBE

        with pytest.raises(ValueError, match="thresholds"):
            ParallelMBE(min_left=0)
        with pytest.raises(ValueError, match="thresholds"):
            ParallelMBE(min_right=-1)
