"""Behavioural tests for the baseline algorithms (naive/MBEA/iMBEA/PMBE/ooMBEA)."""

from __future__ import annotations

import random

import pytest

from repro import BipartiteGraph, run_mbe
from tests.conftest import random_bigraph


class TestNaive:
    def test_counts_intersections(self, g0):
        result = run_mbe(g0, "naive")
        assert result.stats.intersections > 0
        assert result.stats.checks > 0

    def test_non_maximal_counted(self, g0):
        # G0's tree generates non-maximal nodes (e.g. node s1).
        assert run_mbe(g0, "naive", order="natural").stats.non_maximal > 0


class TestMBEAFamily:
    def test_imbea_visits_no_more_nodes_than_mbea(self):
        rng = random.Random(5)
        wins = ties = 0
        for _ in range(30):
            g = random_bigraph(rng, max_side=7, p=0.4)
            a = run_mbe(g, "mbea").stats.nodes
            b = run_mbe(g, "imbea").stats.nodes
            if b < a:
                wins += 1
            elif b == a:
                ties += 1
        # sorting may tie on tiny graphs but must not lose systematically
        assert wins + ties >= 25

    def test_mbea_equals_imbea_results(self):
        rng = random.Random(6)
        for _ in range(40):
            g = random_bigraph(rng)
            assert (
                run_mbe(g, "mbea").biclique_set()
                == run_mbe(g, "imbea").biclique_set()
            )

    @pytest.mark.parametrize("algo", ["naive", "mbea", "imbea"])
    def test_star_graph(self, algo):
        g = BipartiteGraph([(0, v) for v in range(6)])
        result = run_mbe(g, algo)
        assert result.count == 1
        assert result.bicliques[0].right == tuple(range(6))


class TestPMBE:
    def test_pivot_prunes_branches(self):
        # On dense graphs the pivot rule must suppress candidate branches.
        g = BipartiteGraph(
            [(u, v) for u in range(5) for v in range(5) if (u + v) % 7 != 0]
        )
        result = run_mbe(g, "pmbe")
        assert result.stats.merged_candidates > 0

    def test_pmbe_fewer_nonmaximal_than_mbea(self):
        rng = random.Random(8)
        total_pmbe = total_mbea = 0
        for _ in range(25):
            g = random_bigraph(rng, max_side=8, p=0.5)
            total_pmbe += run_mbe(g, "pmbe").stats.non_maximal
            total_mbea += run_mbe(g, "mbea").stats.non_maximal
        assert total_pmbe <= total_mbea

    def test_dense_complete_graph(self):
        g = BipartiteGraph([(u, v) for u in range(6) for v in range(6)])
        assert run_mbe(g, "pmbe").count == 1


class TestOOMBEA:
    def test_default_order_is_unilateral(self):
        from repro.core.oombea import OOMBEA

        assert OOMBEA().order == "unilateral"

    def test_subtree_count_reported(self, g0):
        result = run_mbe(g0, "oombea")
        assert result.stats.subtrees > 0

    @pytest.mark.parametrize("order", ["natural", "degree", "unilateral"])
    def test_orders_are_exact(self, order):
        rng = random.Random(11)
        for _ in range(25):
            g = random_bigraph(rng)
            truth = run_mbe(g, "bruteforce").biclique_set()
            assert run_mbe(g, "oombea", order=order).biclique_set() == truth


class TestDegenerateInputs:
    """Edge-case graphs every algorithm must handle."""

    CASES = [
        ("empty", BipartiteGraph([]), 0),
        ("no-edges", BipartiteGraph([], n_u=3, n_v=3), 0),
        ("one-edge", BipartiteGraph([(0, 0)]), 1),
        ("matching", BipartiteGraph([(i, i) for i in range(5)]), 5),
        ("star-u", BipartiteGraph([(0, v) for v in range(5)]), 1),
        ("star-v", BipartiteGraph([(u, 0) for u in range(5)]), 1),
        ("complete", BipartiteGraph([(u, v) for u in range(3) for v in range(3)]), 1),
        # chain u0-v0-u1-v1-u2-v2: bicliques {u0,u1}x{v0}, {u1}x{v0,v1},
        # {u1,u2}x{v1}, {u2}x{v1,v2}
        ("chain", BipartiteGraph([(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]), 4),
    ]

    @pytest.mark.parametrize("algo", ["naive", "mbea", "imbea", "pmbe",
                                      "oombea", "mbet", "mbetm"])
    @pytest.mark.parametrize("name,graph,expected", CASES,
                             ids=[c[0] for c in CASES])
    def test_degenerate(self, algo, name, graph, expected):
        assert run_mbe(graph, algo).count == expected
