"""Tests for MBETM: budgets and progressive enumeration."""

from __future__ import annotations

import random

import pytest

from repro import Biclique, run_mbe
from repro.core.mbetm import DEFAULT_BUDGET, MBETM
from tests.conftest import G0_MAXIMAL, random_bigraph


class TestBudgetedEnumeration:
    def test_exact_under_default_budget(self, g0):
        assert run_mbe(g0, "mbetm").biclique_set() == G0_MAXIMAL

    @pytest.mark.parametrize("budget", [1, 2, 4, 16, 256])
    def test_exact_under_tiny_budgets(self, budget):
        # Correctness must not depend on the budget: overflowed inserts
        # fall back to linear scans, never to wrong answers.
        rng = random.Random(9)
        from repro import run_mbe as run

        for _ in range(40):
            g = random_bigraph(rng)
            truth = run(g, "bruteforce").biclique_set()
            assert run(g, "mbetm", max_nodes=budget).biclique_set() == truth

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            MBETM(max_nodes=0)

    def test_budget_property(self):
        assert MBETM(max_nodes=123).max_nodes == 123
        assert MBETM().max_nodes == DEFAULT_BUDGET

    def test_trie_peak_respects_budget(self):
        from repro import planted_bicliques

        g = planted_bicliques(200, 120, 80, (2, 6), (2, 6), 300, seed=4)
        budget = 64
        result = run_mbe(g, "mbetm", max_nodes=budget, collect=False)
        assert result.stats.trie_peak_nodes <= budget

    def test_small_budget_overflows_more(self):
        from repro import planted_bicliques

        g = planted_bicliques(200, 120, 80, (2, 6), (2, 6), 300, seed=4)
        tight = run_mbe(g, "mbetm", max_nodes=32, collect=False)
        roomy = run_mbe(g, "mbetm", max_nodes=1 << 16, collect=False)
        assert tight.stats.trie_overflow > roomy.stats.trie_overflow
        assert tight.count == roomy.count


class TestProgressive:
    def test_yields_all_bicliques_with_timestamps(self, g0):
        algo = MBETM()
        out = list(algo.iter_bicliques(g0))
        assert {b for _, b in out} == G0_MAXIMAL
        stamps = [t for t, _ in out]
        assert stamps == sorted(stamps)
        assert all(t >= 0 for t in stamps)

    def test_yields_biclique_objects(self, g0):
        algo = MBETM()
        _, first = next(iter(algo.iter_bicliques(g0)))
        assert isinstance(first, Biclique)

    def test_early_stop_is_cheap(self):
        from repro import planted_bicliques

        g = planted_bicliques(300, 200, 120, (2, 6), (2, 6), 400, seed=6)
        gen = MBETM().iter_bicliques(g)
        got = [next(gen) for _ in range(10)]
        assert len(got) == 10
        gen.close()  # generator can be abandoned mid-run

    def test_orientation_swaps_back(self, g0):
        swapped_graph = g0.swap_sides()
        algo = MBETM(orient_smaller_v=True)
        out = {b for _, b in algo.iter_bicliques(swapped_graph)}
        assert out == {b.swap() for b in G0_MAXIMAL}

    def test_matches_batch_run(self):
        rng = random.Random(13)
        for _ in range(20):
            g = random_bigraph(rng)
            batch = run_mbe(g, "mbetm").biclique_set()
            progressive = {b for _, b in MBETM().iter_bicliques(g)}
            assert progressive == batch

    def test_progressive_respects_size_constraints(self):
        rng = random.Random(14)
        for _ in range(15):
            g = random_bigraph(rng)
            want = run_mbe(g, "mbetm", min_left=2, min_right=2).biclique_set()
            algo = MBETM(min_left=2, min_right=2)
            got = {b for _, b in algo.iter_bicliques(g)}
            assert got == want
