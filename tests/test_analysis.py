"""Tests for the analytics package."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro import (
    Biclique,
    edge_coverage,
    filter_by_size,
    run_mbe,
    size_histogram,
    summarize,
    top_k_by_area,
    vertex_participation,
)
from repro.analysis import BicliqueSummary
from tests.conftest import G0_MAXIMAL
from tests.strategies import bipartite_graphs

RELAXED = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s == BicliqueSummary.empty()
        assert s.count == 0

    def test_g0_summary(self):
        s = summarize(G0_MAXIMAL)
        assert s.count == 6
        assert s.max_left == 4   # ({u0..u3}, {v1})
        assert s.max_right == 4  # ({u1}, {v0..v3})
        assert s.max_area == 6   # 2x3 or 3x2
        assert s.total_area == sum(b.n_edges for b in G0_MAXIMAL)

    def test_means(self):
        bs = [Biclique.make([0], [0]), Biclique.make([0, 1, 2], [0, 1, 2])]
        s = summarize(bs)
        assert s.mean_left == 2.0
        assert s.mean_right == 2.0


class TestHistogramAndTopK:
    def test_histogram_g0(self):
        hist = size_histogram(G0_MAXIMAL)
        assert sum(hist.values()) == 6
        assert hist[(4, 1)] == 1
        assert hist[(1, 4)] == 1

    def test_top_k(self):
        top = top_k_by_area(G0_MAXIMAL, 2)
        assert len(top) == 2
        assert top[0].n_edges >= top[1].n_edges
        assert top[0].n_edges == 6

    def test_top_k_zero_and_overflow(self):
        assert top_k_by_area(G0_MAXIMAL, 0) == []
        assert len(top_k_by_area(G0_MAXIMAL, 99)) == 6

    def test_top_k_validation(self):
        import pytest

        with pytest.raises(ValueError):
            top_k_by_area(G0_MAXIMAL, -1)

    def test_top_k_deterministic_tiebreak(self):
        a = Biclique.make([0], [0, 1])
        b = Biclique.make([1], [0, 1])
        assert top_k_by_area([b, a], 2) == [a, b]
        assert top_k_by_area([a, b], 2) == [a, b]


class TestFilterBySize:
    def test_matches_constrained_enumeration(self, g0):
        full = run_mbe(g0, "mbet").bicliques
        assert set(filter_by_size(full, 2, 2)) == run_mbe(
            g0, "mbet", min_left=2, min_right=2
        ).biclique_set()

    @RELAXED
    @given(g=bipartite_graphs())
    def test_property_matches_constrained(self, g):
        full = run_mbe(g, "mbet").bicliques
        assert set(filter_by_size(full, 2, 2)) == run_mbe(
            g, "mbet", min_left=2, min_right=2
        ).biclique_set()


class TestParticipation:
    def test_counts(self):
        left, right = vertex_participation(G0_MAXIMAL)
        # u1 is in every maximal biclique of G0
        assert left[1] == 6
        assert right[1] == 5  # v1 appears in five of the six bicliques

    def test_empty(self):
        left, right = vertex_participation([])
        assert not left and not right


class TestEdgeCoverage:
    def test_full_mbe_covers_every_edge(self, g0):
        assert edge_coverage(g0, run_mbe(g0, "mbet").bicliques) == 1.0

    def test_partial_slice_covers_less(self, g0):
        sliced = filter_by_size(G0_MAXIMAL, 3, 1)
        assert edge_coverage(g0, sliced) < 1.0

    def test_empty_graph(self):
        from repro import BipartiteGraph

        assert edge_coverage(BipartiteGraph([]), []) == 1.0

    @RELAXED
    @given(g=bipartite_graphs())
    def test_property_full_coverage(self, g):
        # every edge of a bipartite graph lies in some maximal biclique
        assert edge_coverage(g, run_mbe(g, "mbet").bicliques) == 1.0
