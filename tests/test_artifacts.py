"""Tests for the content-addressed artifact store (src/repro/artifacts).

The failure matrix pinned here mirrors docs/artifacts.md:

* a writer killed mid-write (kill -9) leaves the old entry authoritative;
* a corrupted / truncated entry is quarantined and transparently rebuilt;
* concurrent readers and a writer interleave safely under the file lock;
* eviction never removes a pinned entry;
* a repeat ``repro run`` against an unchanged graph performs zero graph
  parses and zero ordering recomputations.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro import artifacts
from repro.artifacts import ArtifactStore, kinds
from repro.bigraph.graph import BipartiteGraph
from repro.bigraph.io import write_edge_list
from repro.cli import main
from tests.conftest import make_g0

EDGES = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 1)]


def _graph() -> BipartiteGraph:
    return BipartiteGraph(EDGES)


def _store(tmp_path, **kwargs) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store", **kwargs)


# --------------------------------------------------------------------------
# addressing / identity


class TestGraphKey:
    def test_key_is_format_independent(self, tmp_path):
        g = _graph()
        plain = tmp_path / "plain.txt"
        write_edge_list(g, plain)
        konect = tmp_path / "konect.tsv"
        konect.write_text(
            "% bip unweighted\n"
            + "".join(f"{u + 1} {v + 1}\n" for u, v in EDGES)
        )
        store = _store(tmp_path)
        _, key_plain, _ = kinds.load_graph_cached(plain, store)
        _, key_konect, _ = kinds.load_graph_cached(konect, store)
        assert key_plain == key_konect == kinds.graph_key(g)

    def test_key_distinguishes_different_graphs(self):
        assert kinds.graph_key(_graph()) != kinds.graph_key(
            BipartiteGraph(EDGES + [(2, 0)])
        )

    def test_encode_decode_round_trip(self):
        g = make_g0()
        back = kinds.decode_graph(kinds.encode_graph(g))
        assert back.n_u == g.n_u and back.n_v == g.n_v
        for u in range(g.n_u):
            assert list(back.neighbors_u(u)) == list(g.neighbors_u(u))

    def test_entry_path_sanitises_fingerprint(self, tmp_path):
        store = _store(tmp_path)
        path = store.entry_path("abc", "order", "degree:0")
        assert ":" not in os.path.basename(path)
        store.put("abc", "order", [0, 1], "degree:0")
        assert store.get("abc", "order", "degree:0") == [0, 1]


# --------------------------------------------------------------------------
# crash safety


class TestCrashSafety:
    def test_kill9_mid_write_leaves_old_entry_authoritative(self, tmp_path):
        store = _store(tmp_path)
        gk = kinds.graph_key(_graph())
        store.put(gk, "stats", {"v": "old"})
        # a real writer process, SIGKILLed inside the write (fsync is the
        # last call before os.replace publishes the entry)
        script = (
            "import os, sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.artifacts import ArtifactStore\n"
            "os.fsync = lambda fd: os.kill(os.getpid(), 9)\n"
            f"store = ArtifactStore({str(tmp_path / 'store')!r})\n"
            f"store.put({gk!r}, 'stats', {{'v': 'new'}})\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script,
             os.path.join(os.path.dirname(__file__), "..", "src")],
            capture_output=True,
        )
        assert proc.returncode == -signal.SIGKILL
        # the old entry is intact and served; the torn temp file is inert
        fresh = _store(tmp_path)
        assert fresh.get(gk, "stats") == {"v": "old"}
        leftovers = [
            name
            for _d, _s, files in os.walk(fresh.objects_dir)
            for name in files if ".tmp." in name
        ]
        assert leftovers  # the kill really interrupted a write
        report = fresh.verify()
        assert report["tmp_removed"] == len(leftovers)
        assert report["quarantined"] == []
        assert fresh.get(gk, "stats") == {"v": "old"}

    def test_interrupted_put_never_tears_the_entry(self, tmp_path):
        """Simulated torn write: a stale temp sibling with partial JSON
        must never shadow or corrupt the committed entry."""
        store = _store(tmp_path)
        store.put("g" * 64, "stats", {"v": 1})
        path = store.entry_path("g" * 64, "stats")
        with open(path + ".tmp.9999.1", "w") as handle:
            handle.write('{"format": 1, "payl')  # torn mid-write
        fresh = _store(tmp_path)
        assert fresh.get("g" * 64, "stats") == {"v": 1}
        assert fresh.gc()["tmp_removed"] == 1


# --------------------------------------------------------------------------
# corruption → quarantine → rebuild


class TestCorruption:
    def _poison(self, store, gk, kind, fingerprint="-", blob=b"garbage{"):
        path = store.entry_path(gk, kind, fingerprint)
        with open(path, "wb") as handle:
            handle.write(blob)

    def test_corrupt_entry_quarantined_and_rebuilt(self, tmp_path):
        g = _graph()
        gk = kinds.graph_key(g)
        writer = _store(tmp_path)
        first = kinds.cached_vertex_order(writer, gk, g)
        self._poison(writer, gk, "order", "degree:0")
        # corruption is a cross-process concern: a *fresh* store (no RAM
        # memo of the healthy payload) must detect, quarantine, rebuild
        reader = _store(tmp_path)
        assert reader.get(gk, "order", "degree:0") is None
        assert os.listdir(reader.quarantine_dir)  # moved aside, not lost
        rebuilt = kinds.cached_vertex_order(reader, gk, g)
        assert rebuilt == first
        assert reader.get(gk, "order", "degree:0") == first

    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path):
        store = _store(tmp_path)
        gk = "a" * 64
        store.put(gk, "stats", {"n_edges": 5})
        path = store.entry_path(gk, "stats")
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        fresh = _store(tmp_path)
        assert fresh.get(gk, "stats") is None
        assert any(
            "unparseable" in name
            for name in os.listdir(fresh.quarantine_dir)
        )

    def test_checksum_mismatch_detected(self, tmp_path):
        store = _store(tmp_path)
        gk = "b" * 64
        store.put(gk, "stats", {"v": 1})
        path = store.entry_path(gk, "stats")
        doc = json.loads(open(path, "rb").read())
        doc["payload"] = {"v": 2}  # payload flipped, checksum stale
        with open(path, "w") as handle:
            json.dump(doc, handle)
        fresh = _store(tmp_path)
        assert fresh.get(gk, "stats") is None
        assert any(
            "checksum_mismatch" in name
            for name in os.listdir(fresh.quarantine_dir)
        )

    def test_entry_at_wrong_address_quarantined_by_verify(self, tmp_path):
        store = _store(tmp_path)
        store.put("c" * 64, "stats", {"v": 1})
        src = store.entry_path("c" * 64, "stats")
        dst = store.entry_path("d" * 64, "stats")
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        os.rename(src, dst)  # entry now lies about its own address
        fresh = _store(tmp_path)
        report = fresh.verify()
        assert report["ok"] == 0 and len(report["quarantined"]) == 1
        assert "address_mismatch" in os.listdir(fresh.quarantine_dir)[0]

    def test_verify_keeps_healthy_colon_fingerprints(self, tmp_path):
        """Sanitised filenames (``degree:0`` → ``degree_0``) must not be
        mistaken for address mismatches by the integrity scan."""
        g = _graph()
        store = _store(tmp_path)
        gk = kinds.graph_key(g)
        kinds.cached_vertex_order(store, gk, g)
        kinds.cached_root_count(store, gk, g)
        report = store.verify()
        assert report["quarantined"] == [] and report["ok"] == 2

    def test_corrupt_counter_exported(self, tmp_path):
        store = _store(tmp_path)
        store.put("e" * 64, "stats", {"v": 1})
        self._poison(store, "e" * 64, "stats")
        fresh = _store(tmp_path)
        fresh.get("e" * 64, "stats")
        counters = fresh.stats_summary()["counters"]
        assert counters.get("artifacts_corrupt_total") == 1


# --------------------------------------------------------------------------
# concurrency


class TestConcurrency:
    def test_concurrent_readers_and_writer(self, tmp_path):
        """One writer rewrites entries while readers hammer them: every
        read is either a miss or a fully-consistent payload."""
        root = tmp_path / "store"
        writer = ArtifactStore(root)
        readers = [ArtifactStore(root, memo_slots=0) for _ in range(3)]
        gk = "f" * 64
        stop = threading.Event()
        errors: list[str] = []

        def write_loop():
            for i in range(50):
                writer.put(gk, "stats", {"i": i, "sq": i * i})
            stop.set()

        def read_loop(store):
            while not stop.is_set():
                got = store.get(gk, "stats")
                if got is None:
                    continue
                if got["sq"] != got["i"] * got["i"]:
                    errors.append(f"torn read: {got}")

        threads = [threading.Thread(target=write_loop)] + [
            threading.Thread(target=read_loop, args=(r,)) for r in readers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert writer.get(gk, "stats") == {"i": 49, "sq": 49 * 49}
        assert writer.verify()["quarantined"] == []

    def test_cross_process_writers_leave_store_consistent(self, tmp_path):
        root = str(tmp_path / "store")
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.artifacts import ArtifactStore\n"
            "store = ArtifactStore(sys.argv[2])\n"
            "who = int(sys.argv[3])\n"
            "for i in range(10):\n"
            "    store.put('a' * 64, 'stats', {'who': who, 'i': i},\n"
            "              fingerprint=f'{who}:{i}')\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, src, root, str(who)],
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            )
            for who in range(3)
        ]
        for p in procs:
            _, err = p.communicate(timeout=120)
            assert p.returncode == 0, err.decode()
        store = ArtifactStore(root)
        report = store.verify()
        assert report["ok"] == 30 and report["quarantined"] == []
        for who in range(3):
            for i in range(10):
                assert store.get("a" * 64, "stats", f"{who}:{i}") == {
                    "who": who, "i": i,
                }

    def test_filelock_is_reentrant_in_process(self, tmp_path):
        store = _store(tmp_path)
        with store.lock:
            with store.lock:  # e.g. put() inside gc()
                store.put("g" * 64, "stats", {"v": 1})
        assert store.get("g" * 64, "stats") == {"v": 1}


# --------------------------------------------------------------------------
# eviction


class TestEviction:
    def test_lru_eviction_respects_budget(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=2_000)
        for i in range(20):
            store.put("h" * 64, "stats", {"pad": "x" * 200}, str(i))
        total = sum(e.size for e in store.entries())
        assert total <= 2_000
        assert len(store.entries()) < 20
        counters = store.stats_summary()["counters"]
        assert counters.get("artifacts_evictions_total", 0) > 0

    def test_eviction_never_removes_pinned_entry(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=1_200)
        gk = "i" * 64
        store.put(gk, "stats", {"pad": "x" * 200}, "pinned")
        with store.pin(gk, "stats", "pinned"):
            for i in range(20):
                store.put(gk, "stats", {"pad": "y" * 200}, f"filler{i}")
            assert store.get(gk, "stats", "pinned") is not None
        # after release the entry is evictable again
        store.put(gk, "stats", {"pad": "z" * 600}, "big")
        assert sum(e.size for e in store.entries()) <= 1_200

    def test_recently_used_entries_survive(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=None)
        gk = "j" * 64
        for i in range(10):
            store.put(gk, "stats", {"pad": "x" * 200}, str(i))
        os.utime(store.entry_path(gk, "stats", "0"), (1, 1))  # make LRU
        store.gc(max_bytes=1_500)
        assert store.get(gk, "stats", "0") is None  # the LRU went first
        assert store.get(gk, "stats", "9") is not None


# --------------------------------------------------------------------------
# source index / cached loading


class TestLoadGraphCached:
    def test_second_load_skips_parsing(self, tmp_path, monkeypatch):
        g = make_g0()
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        store = _store(tmp_path)
        _, gk, cached = kinds.load_graph_cached(path, store)
        assert not cached
        import repro.bigraph.io as io_mod

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("warm load re-parsed the file")

        monkeypatch.setattr(io_mod, "read_edge_list", boom)
        graph, gk2, cached2 = kinds.load_graph_cached(path, store)
        assert cached2 and gk2 == gk
        assert graph.n_edges == g.n_edges

    def test_changed_file_invalidates_source_index(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(_graph(), path)
        store = _store(tmp_path)
        _, gk, _ = kinds.load_graph_cached(path, store)
        write_edge_list(BipartiteGraph(EDGES + [(2, 0)]), path)
        graph, gk2, cached = kinds.load_graph_cached(path, store)
        assert not cached and gk2 != gk
        assert graph.n_edges == len(EDGES) + 1

    def test_peek_graph_key_warm_and_cold(self, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(_graph(), path)
        store = _store(tmp_path)
        assert kinds.peek_graph_key(path, store) is None  # cold
        _, gk, _ = kinds.load_graph_cached(path, store)
        assert kinds.peek_graph_key(path, store) == gk
        path.write_text("0 0\n")
        assert kinds.peek_graph_key(path, store) is None  # stale

    def test_io_facade_uses_default_store(self, tmp_path, monkeypatch):
        from repro.bigraph.io import load_graph_cached as facade

        monkeypatch.setenv(artifacts.ENV_DIR, str(tmp_path / "env-store"))
        path = tmp_path / "g.txt"
        write_edge_list(_graph(), path)
        graph, gk, cached = facade(path)
        assert not cached and graph.n_edges == len(EDGES)
        _, _, warm = facade(path)
        assert warm
        assert (tmp_path / "env-store" / "objects").is_dir()


# --------------------------------------------------------------------------
# derived artifact producers


class TestProducers:
    def test_cached_order_built_once(self, tmp_path, monkeypatch):
        g = make_g0()
        gk = kinds.graph_key(g)
        store = _store(tmp_path)
        import repro.bigraph.ordering as ordering_mod

        expected = ordering_mod.vertex_order(g)
        calls = []
        real = ordering_mod._compute_order

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(ordering_mod, "_compute_order", counting)
        first = kinds.cached_vertex_order(store, gk, g)
        again = kinds.cached_vertex_order(store, gk, g)
        assert first == again == expected
        assert len(calls) == 1

    def test_cost_matches_serve_estimate(self, tmp_path):
        from repro.serve.queue import estimate_cost

        g = make_g0()
        store = _store(tmp_path)
        assert kinds.cached_cost(store, kinds.graph_key(g), g) == \
            estimate_cost(g)

    def test_degeneracy_stats_components_round_trip(self, tmp_path):
        from repro.bigraph.components import connected_components
        from repro.bigraph.ordering import degeneracy_order
        from repro.bigraph.stats import compute_stats

        g = make_g0()
        gk = kinds.graph_key(g)
        store = _store(tmp_path)
        order_v, degen = kinds.cached_degeneracy_order(store, gk, g)
        assert (order_v, degen) == tuple(degeneracy_order(g))
        assert kinds.cached_stats(store, gk, g) == compute_stats(g)
        assert kinds.cached_components(store, gk, g) == [
            (list(us), list(vs)) for us, vs in connected_components(g)
        ]

    def test_precomputed_permutation_accepted_by_vertex_order(self):
        from repro.bigraph.ordering import vertex_order

        g = _graph()
        perm = vertex_order(g, "degree")
        assert vertex_order(g, perm) == perm  # pass-through
        with pytest.raises(ValueError, match="permutation"):
            vertex_order(g, [0, 0])


# --------------------------------------------------------------------------
# result cache


class TestResultCache:
    def test_round_trip_and_need_bicliques(self, tmp_path):
        store = _store(tmp_path)
        gk = "k" * 64
        fp = kinds.result_fingerprint("mbet")
        assert kinds.get_cached_result(store, gk, fp) is None
        kinds.put_cached_result(
            store, gk, fp, engine="mbet", count=2, elapsed=0.5,
            bicliques=[([0, 1], [0, 1]), ([0, 1, 2], [1])],
        )
        hit = kinds.get_cached_result(store, gk, fp, need_bicliques=True)
        assert hit["count"] == 2 and len(hit["bicliques"]) == 2

    def test_count_only_entry_misses_collect_callers(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(kinds, "RESULT_BICLIQUE_CAP", 1)
        store = _store(tmp_path)
        gk = "l" * 64
        fp = kinds.result_fingerprint("mbet")
        kinds.put_cached_result(
            store, gk, fp, engine="mbet", count=2, elapsed=0.5,
            bicliques=[([0], [0]), ([1], [1])],  # over the cap
        )
        assert kinds.get_cached_result(store, gk, fp)["bicliques"] is None
        assert kinds.get_cached_result(
            store, gk, fp, need_bicliques=True
        ) is None

    def test_fingerprint_covers_thresholds_and_options(self):
        base = kinds.result_fingerprint("mbet")
        assert kinds.result_fingerprint("mbet") == base
        assert kinds.result_fingerprint("mbea") != base
        assert kinds.result_fingerprint("mbet", min_left=2) != base
        assert kinds.result_fingerprint(
            "mbet", engine_options={"workers": 4}
        ) != base


# --------------------------------------------------------------------------
# CLI integration


class TestCliCache:
    @pytest.fixture
    def g0_file(self, tmp_path):
        path = tmp_path / "g0.txt"
        write_edge_list(make_g0(), path)
        return str(path)

    def _run(self, g0_file, cache_dir, *extra):
        return main([
            "run", "--input", g0_file, "-a", "mbet",
            "--cache-dir", str(cache_dir), *extra,
        ])

    def test_warm_run_zero_parses_zero_orderings(
        self, g0_file, tmp_path, capsys, monkeypatch
    ):
        cache = tmp_path / "cache"
        assert self._run(g0_file, cache) == 0
        cold = capsys.readouterr()
        assert "6 maximal bicliques" in cold.out
        # the warm run must finish without touching the graph: any parse
        # or ordering recomputation is a hard failure
        import repro.bigraph.io as io_mod
        import repro.bigraph.ordering as ordering_mod

        def no_parse(*a, **k):  # pragma: no cover - guard
            raise AssertionError("warm run re-parsed the graph")

        def no_order(*a, **k):  # pragma: no cover - guard
            raise AssertionError("warm run recomputed the ordering")

        monkeypatch.setattr(io_mod, "read_edge_list", no_parse)
        monkeypatch.setattr(ordering_mod, "_compute_order", no_order)
        assert self._run(g0_file, cache) == 0
        warm = capsys.readouterr()
        assert "cached result" in warm.out
        assert "6 maximal bicliques" in warm.out

    def test_cold_run_orders_exactly_once(
        self, g0_file, tmp_path, capsys, monkeypatch
    ):
        """The ordering produced by the cost pre-flight is threaded into
        the engine — the same invocation never computes it twice."""
        import repro.bigraph.ordering as ordering_mod

        calls = []
        real = ordering_mod._compute_order

        def counting(graph, strategy, seed):
            calls.append(strategy)
            return real(graph, strategy, seed)

        monkeypatch.setattr(ordering_mod, "_compute_order", counting)
        assert self._run(g0_file, tmp_path / "cache") == 0
        assert calls.count("degree") == 1

    def test_warm_output_file_identical(self, g0_file, tmp_path, capsys):
        cache = tmp_path / "cache"
        out1, out2 = tmp_path / "a.tsv", tmp_path / "b.tsv"
        assert self._run(g0_file, cache, "-o", str(out1)) == 0
        assert self._run(g0_file, cache, "-o", str(out2)) == 0
        capsys.readouterr()
        assert out1.read_text() == out2.read_text()

    def test_budgeted_run_bypasses_result_cache(
        self, g0_file, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        assert self._run(g0_file, cache) == 0
        assert self._run(g0_file, cache, "--max-bicliques", "3") == 0
        out = capsys.readouterr().out
        assert "cached result" not in out.splitlines()[-1]

    def test_no_cache_flag_wins(self, g0_file, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert self._run(g0_file, cache) == 0
        assert self._run(g0_file, cache, "--no-cache") == 0
        assert "cached result" not in capsys.readouterr().out.splitlines()[-1]

    def test_corrupted_result_entry_rebuilt_with_correct_answer(
        self, g0_file, tmp_path, capsys
    ):
        cache = tmp_path / "cache"
        assert self._run(g0_file, cache) == 0
        store = artifacts.open_store(cache)
        results = [e for e in store.entries() if e.kind == "result"]
        assert len(results) == 1
        with open(results[0].path, "w") as handle:
            handle.write("NOT JSON")
        capsys.readouterr()
        # the corrupt entry is quarantined, the run recomputes, and the
        # recomputed (correct) answer replaces it
        assert self._run(g0_file, cache) == 0
        out = capsys.readouterr().out
        assert "6 maximal bicliques" in out and "cached result" not in out
        assert os.listdir(store.quarantine_dir)
        assert self._run(g0_file, cache) == 0
        assert "cached result" in capsys.readouterr().out

    def test_cache_subcommands(self, g0_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert self._run(g0_file, cache) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache, "stats"]) == 0
        stats_out = capsys.readouterr().out
        assert "entries" in stats_out and "result" in stats_out
        assert main(["cache", "--cache-dir", cache, "ls"]) == 0
        ls_out = capsys.readouterr().out
        assert "order" in ls_out and "graph" in ls_out
        assert main(["cache", "--cache-dir", cache, "verify"]) == 0
        assert "verified" in capsys.readouterr().out
        assert main(["cache", "--cache-dir", cache, "gc"]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache, "clear"]) == 0
        capsys.readouterr()
        store = artifacts.open_store(cache)
        assert store.entries() == []

    def test_cache_verify_flags_corruption_with_exit_1(
        self, g0_file, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert self._run(g0_file, cache) == 0
        store = artifacts.open_store(cache)
        entry = store.entries()[0]
        with open(entry.path, "w") as handle:
            handle.write("junk")
        capsys.readouterr()
        assert main(["cache", "--cache-dir", cache, "verify"]) == 1
        err = capsys.readouterr().err
        assert "quarantined" in err
