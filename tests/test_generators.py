"""Tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro import (
    planted_bicliques,
    powerlaw_bipartite,
    random_bipartite,
    subsample_edges,
)


class TestRandomBipartite:
    def test_deterministic_in_seed(self):
        assert random_bipartite(20, 15, 0.3, seed=4) == random_bipartite(
            20, 15, 0.3, seed=4
        )

    def test_different_seeds_differ(self):
        a = random_bipartite(30, 30, 0.3, seed=1)
        b = random_bipartite(30, 30, 0.3, seed=2)
        assert a != b

    def test_p_zero_and_one(self):
        assert random_bipartite(5, 5, 0.0, seed=0).n_edges == 0
        assert random_bipartite(5, 5, 1.0, seed=0).n_edges == 25

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError):
            random_bipartite(5, 5, 1.5)

    def test_negative_sides_rejected(self):
        with pytest.raises(ValueError):
            random_bipartite(-1, 5, 0.5)

    def test_empty_side(self):
        g = random_bipartite(0, 5, 0.9, seed=0)
        assert g.n_edges == 0

    def test_edge_count_near_expectation(self):
        g = random_bipartite(100, 100, 0.1, seed=9)
        assert 700 <= g.n_edges <= 1300  # E = 1000, generous band


class TestPowerlawBipartite:
    def test_deterministic(self):
        a = powerlaw_bipartite(50, 40, 300, 2.0, seed=3)
        b = powerlaw_bipartite(50, 40, 300, 2.0, seed=3)
        assert a == b

    def test_shape_respected(self):
        g = powerlaw_bipartite(50, 40, 300, 2.0, seed=3)
        assert (g.n_u, g.n_v) == (50, 40)
        assert 0 < g.n_edges <= 300  # dedup may shrink

    def test_skewed_degrees(self):
        g = powerlaw_bipartite(200, 200, 2000, 1.6, seed=1)
        degrees = sorted((g.degree_v(v) for v in range(g.n_v)), reverse=True)
        # hub dominance: top vertex holds many times the median degree
        assert degrees[0] >= 5 * max(degrees[len(degrees) // 2], 1)

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            powerlaw_bipartite(5, 5, 10, exponent=1.0)

    def test_side_validation(self):
        with pytest.raises(ValueError):
            powerlaw_bipartite(0, 5, 10)

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_bipartite(5, 5, -1)

    def test_zero_edges(self):
        assert powerlaw_bipartite(5, 5, 0, seed=0).n_edges == 0


class TestPlantedBicliques:
    def test_deterministic(self):
        a = planted_bicliques(30, 20, 10, seed=5)
        b = planted_bicliques(30, 20, 10, seed=5)
        assert a == b

    def test_blocks_are_complete(self):
        # One block, no noise: the whole graph is one complete biclique.
        g = planted_bicliques(50, 50, 1, (4, 4), (6, 6), seed=2)
        us = [u for u in range(50) if g.degree_u(u)]
        vs = [v for v in range(50) if g.degree_v(v)]
        assert (len(us), len(vs)) == (4, 6)
        assert all(g.has_edge(u, v) for u in us for v in vs)

    def test_block_size_clamped_to_sides(self):
        g = planted_bicliques(3, 2, 1, (10, 10), (10, 10), seed=0)
        assert g.n_edges == 6  # 3 x 2, clamped

    def test_noise_edges_added(self):
        quiet = planted_bicliques(40, 40, 3, seed=7)
        noisy = planted_bicliques(40, 40, 3, noise_edges=200, seed=7)
        assert noisy.n_edges > quiet.n_edges

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            planted_bicliques(10, 10, 1, block_u=(0, 3))
        with pytest.raises(ValueError):
            planted_bicliques(10, 10, 1, block_v=(5, 2))

    def test_side_validation(self):
        with pytest.raises(ValueError):
            planted_bicliques(0, 10, 1)


class TestSubsampleEdges:
    def test_full_fraction_returns_same_graph(self):
        g = random_bipartite(20, 20, 0.3, seed=1)
        assert subsample_edges(g, 1.0) is g

    def test_zero_fraction(self):
        g = random_bipartite(20, 20, 0.3, seed=1)
        sub = subsample_edges(g, 0.0, seed=2)
        assert sub.n_edges == 0
        assert (sub.n_u, sub.n_v) == (g.n_u, g.n_v)

    def test_fraction_proportional(self):
        g = random_bipartite(40, 40, 0.4, seed=3)
        sub = subsample_edges(g, 0.5, seed=4)
        assert sub.n_edges == round(g.n_edges * 0.5)

    def test_subset_of_original(self):
        g = random_bipartite(30, 30, 0.3, seed=5)
        sub = subsample_edges(g, 0.4, seed=6)
        original = set(g.edges())
        assert all(e in original for e in sub.edges())

    def test_deterministic(self):
        g = random_bipartite(30, 30, 0.3, seed=5)
        assert subsample_edges(g, 0.3, seed=1) == subsample_edges(g, 0.3, seed=1)

    def test_fraction_validation(self):
        g = random_bipartite(5, 5, 0.5, seed=0)
        with pytest.raises(ValueError):
            subsample_edges(g, 1.2)
