"""Tests for biclique-collection serialization and the verify CLI."""

from __future__ import annotations

import pytest

from repro import run_mbe
from repro.bigraph.io import write_edge_list
from repro.cli import main
from repro.core.io_results import read_bicliques, write_bicliques
from tests.conftest import G0_MAXIMAL, make_g0


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "b.tsv"
        assert write_bicliques(sorted(G0_MAXIMAL), path) == 6
        assert set(read_bicliques(path)) == G0_MAXIMAL

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "b.tsv"
        assert write_bicliques([], path) == 0
        assert read_bicliques(path) == []

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "b.tsv"
        path.write_text("# saved results\n\n1,2\t3\n")
        (b,) = read_bicliques(path)
        assert b.left == (1, 2) and b.right == (3,)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "b.tsv"
        path.write_text("1,2 3\n")  # space, not tab
        with pytest.raises(ValueError, match="expected"):
            read_bicliques(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "b.tsv"
        path.write_text("1,x\t3\n")
        with pytest.raises(ValueError, match="non-integer"):
            read_bicliques(path)

    def test_empty_side(self, tmp_path):
        path = tmp_path / "b.tsv"
        path.write_text(",\t3\n")
        with pytest.raises(ValueError, match="empty biclique side"):
            read_bicliques(path)


class TestVerifyCommand:
    @pytest.fixture
    def files(self, tmp_path):
        graph_path = tmp_path / "g0.txt"
        write_edge_list(make_g0(), graph_path)
        result_path = tmp_path / "out.tsv"
        write_bicliques(run_mbe(make_g0(), "mbet").bicliques, result_path)
        return str(graph_path), str(result_path)

    def test_verify_ok(self, files, capsys):
        graph_path, result_path = files
        assert main(
            ["verify", "--input", graph_path, "--bicliques", result_path]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_complete(self, files, capsys):
        graph_path, result_path = files
        assert main(
            ["verify", "--input", graph_path, "--bicliques", result_path,
             "--complete"]
        ) == 0
        assert "complete" in capsys.readouterr().out

    def test_verify_detects_missing(self, files, tmp_path, capsys):
        graph_path, _ = files
        partial = tmp_path / "partial.tsv"
        write_bicliques(sorted(G0_MAXIMAL)[:4], partial)
        assert main(
            ["verify", "--input", graph_path, "--bicliques", str(partial),
             "--complete"]
        ) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_verify_detects_bogus(self, files, tmp_path, capsys):
        graph_path, _ = files
        bogus = tmp_path / "bogus.tsv"
        bogus.write_text("0\t3\n")  # u0 is not adjacent to v3
        assert main(
            ["verify", "--input", graph_path, "--bicliques", str(bogus)]
        ) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_run_output_verifies(self, tmp_path, capsys):
        graph_path = tmp_path / "g0.txt"
        write_edge_list(make_g0(), graph_path)
        out = tmp_path / "saved.tsv"
        main(["run", "--input", str(graph_path), "-o", str(out)])
        assert main(
            ["verify", "--input", str(graph_path), "--bicliques", str(out),
             "--complete"]
        ) == 0
