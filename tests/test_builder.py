"""Tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro import GraphBuilder


class TestGraphBuilder:
    def test_deduplicates(self):
        g = GraphBuilder().add_edge(0, 0).add_edge(0, 0).build()
        assert g.n_edges == 1

    def test_add_edges_chainable(self):
        g = GraphBuilder().add_edges([(0, 0), (1, 1)]).add_edge(0, 1).build()
        assert g.n_edges == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GraphBuilder().add_edge(0, -1)

    def test_n_edges_counts_distinct(self):
        b = GraphBuilder()
        b.add_edges([(0, 0), (0, 0), (1, 0)])
        assert b.n_edges == 2

    def test_add_biclique(self):
        g = GraphBuilder().add_biclique([0, 1], [0, 1, 2]).build()
        assert g.n_edges == 6
        assert g.neighbors_u(0) == (0, 1, 2)

    def test_add_biclique_overlapping(self):
        b = GraphBuilder()
        b.add_biclique([0, 1], [0])
        b.add_biclique([1, 2], [0])
        assert b.build().neighbors_v(0) == (0, 1, 2)

    def test_declared_sizes(self):
        g = GraphBuilder().add_edge(0, 0).build(n_u=5, n_v=7)
        assert (g.n_u, g.n_v) == (5, 7)

    def test_compact_relabels(self):
        g = GraphBuilder().add_edge(10, 20).add_edge(30, 20).build(compact=True)
        assert (g.n_u, g.n_v) == (2, 1)
        assert g.neighbors_v(0) == (0, 1)

    def test_compact_empty(self):
        g = GraphBuilder().build(compact=True)
        assert (g.n_u, g.n_v, g.n_edges) == (0, 0, 0)

    def test_build_is_repeatable(self):
        b = GraphBuilder().add_edge(0, 1)
        assert b.build() == b.build()
