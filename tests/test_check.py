"""Tests for the differential fuzzing subsystem (repro.check)."""

from __future__ import annotations

import json
import random

import pytest

from repro import BipartiteGraph, run_mbe
from repro.check import (
    Counterexample,
    EngineSpec,
    FuzzConfig,
    GraphCase,
    agreement_oracle,
    budget_prefix_oracle,
    default_engines,
    kill_resume_oracle,
    relabel_oracle,
    run_fuzz,
    sample_case,
    shrink_graph,
    swap_oracle,
    threshold_oracle,
    write_counterexample,
)
from repro.check.engines import CONSTRAINED_ENGINES, DEFAULT_ENGINE_NAMES
from repro.check.selftest import BrokenMBET
from tests.conftest import make_g0, random_bigraph


class TestGraphCase:
    def test_random_case_roundtrips_through_json(self):
        case = GraphCase.make("random", n_u=4, n_v=3, p=0.5, seed=7)
        assert GraphCase.from_json(case.as_json()) == case
        assert case.build() == case.build()  # deterministic

    def test_explicit_case_rebuilds_the_graph(self):
        g = make_g0()
        case = GraphCase.explicit(g)
        assert case.build() == g
        assert GraphCase.from_json(case.as_json()).build() == g

    def test_sampled_cases_build(self):
        rng = random.Random(11)
        for _ in range(30):
            case = sample_case(rng, max_side=6)
            g = case.build()
            assert g.n_u >= 1 and g.n_v >= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GraphCase.make("mystery").build()


class TestEngineSpec:
    def test_registry_spec_runs(self, g0):
        spec = EngineSpec.make("mbet", use_trie=False)
        assert spec.result_set(g0) == run_mbe(g0, "mbet").biclique_set()
        assert spec.label() == "mbet[use_trie=False]"

    def test_factory_spec_bypasses_registry(self, g0):
        spec = EngineSpec.make("broken_mbet", factory=BrokenMBET)
        result = spec.run(g0, collect=True)
        assert result.count > 6  # duplicates / non-maximal outputs

    def test_default_battery_covers_all_engines(self):
        assert {s.name for s in default_engines()} == set(DEFAULT_ENGINE_NAMES)


class TestOraclesPassOnCorrectEngines:
    """No false positives: every oracle is silent on the real engines."""

    def test_agreement_on_g0(self, g0):
        assert agreement_oracle(default_engines())(g0) is None

    def test_metamorphic_battery_on_random_graphs(self):
        rng = random.Random(5)
        specs = [
            EngineSpec.make("mbet"),
            EngineSpec.make("mbet_vec"),
            EngineSpec.make(
                "parallel", workers=1, bound_height=1, bound_size=1
            ),
        ]
        for i in range(8):
            g = random_bigraph(rng, max_side=6)
            for spec in specs:
                assert relabel_oracle(spec, seed=i)(g) is None
                assert swap_oracle(spec)(g) is None
                assert budget_prefix_oracle(spec, cap=2)(g) is None

    def test_threshold_oracle_on_constrained_engines(self, g0):
        for name in sorted(CONSTRAINED_ENGINES):
            opts = {"workers": 1} if name == "parallel" else {}
            spec = EngineSpec.make(name, **opts)
            assert threshold_oracle(spec, 2, 2)(g0) is None

    def test_kill_resume_oracle_on_g0(self, g0):
        assert kill_resume_oracle()(g0) is None


class TestOraclesCatchBugs:
    def test_agreement_catches_broken_engine(self, g0):
        oracle = agreement_oracle(
            [EngineSpec.make("broken_mbet", factory=BrokenMBET)]
        )
        failure = oracle(g0)
        assert failure is not None
        assert failure.oracle == "agreement"
        assert "broken_mbet" in failure.engine

    def test_budget_prefix_catches_missing_results(self, g0):
        # an engine whose capped run drops results yet claims completeness
        class Truncating(BrokenMBET):
            def __init__(self, **options):
                super().__init__(break_maximality=False, **options)

            def run(self, graph, **kwargs):
                budget = kwargs.pop("budget", None)
                result = super().run(graph, **kwargs)
                if budget is not None:
                    del result.bicliques[1:]
                    result.count = len(result.bicliques)
                return result

        failure = budget_prefix_oracle(
            EngineSpec.make("truncating", factory=Truncating), cap=5
        )(g0)
        assert failure is not None
        assert failure.oracle == "budget_prefix"


class TestShrink:
    def test_shrinks_to_single_edge(self):
        g = make_g0()

        def has_edge_00(graph: BipartiteGraph) -> bool:
            return graph.has_edge(0, 0) if graph.n_u and graph.n_v else False

        small = shrink_graph(g, has_edge_00)
        assert small.n_u == 1 and small.n_v == 1 and small.n_edges == 1

    def test_predicate_must_hold_initially(self):
        with pytest.raises(ValueError):
            shrink_graph(make_g0(), lambda g: False)

    def test_broken_engine_shrinks_small(self):
        # acceptance criterion: the feature-flagged broken engine is
        # minimized to a counterexample with at most 8 vertices
        oracle = agreement_oracle(
            [EngineSpec.make("broken_mbet", factory=BrokenMBET)]
        )
        rng = random.Random(23)
        g = None
        while g is None or oracle(g) is None:
            g = random_bigraph(rng, max_side=8)
        small = shrink_graph(g, lambda graph: oracle(graph) is not None)
        assert small.n_u + small.n_v <= 8
        assert oracle(small) is not None


class TestHarness:
    def test_clean_run_finds_nothing(self):
        report = run_fuzz(FuzzConfig(seed=3, max_cases=6, max_side=6))
        assert report.ok
        assert report.cases == 6
        assert report.oracle_runs["agreement"] == 6
        assert report.stopped == "exhausted"

    def test_broken_engine_yields_shrunk_counterexample(self, tmp_path):
        records: list[dict] = []
        report = run_fuzz(
            FuzzConfig(
                seed=3, max_cases=40, max_side=6,
                broken_engine=True, max_failures=1,
            ),
            on_case=records.append,
        )
        assert not report.ok
        cx = report.failures[0]
        assert "broken_mbet" in cx.engine
        assert cx.n_vertices <= 8
        # the JSON artifact replays: the shrunken graph still fails
        replayed = Counterexample.from_json(cx.as_json())
        oracle = agreement_oracle(
            [EngineSpec.make("broken_mbet", factory=BrokenMBET)]
        )
        assert oracle(replayed.graph()) is not None
        # the stream carries per-case records plus a summary
        assert records[-1]["type"] == "summary"
        assert any(r["type"] == "case" and not r["ok"] for r in records)
        # artifacts render, and the pytest case is valid python that passes
        json_path, py_path = write_counterexample(cx, tmp_path)
        saved = json.loads(open(json_path, encoding="utf-8").read())
        assert Counterexample.from_json(saved).shrunk == cx.shrunk
        namespace: dict = {}
        exec(open(py_path, encoding="utf-8").read(), namespace)  # noqa: S102
        test_fn = next(v for k, v in namespace.items() if k.startswith("test_"))
        test_fn()  # the real engine passes on the shrunken graph

    def test_dataset_cases_run_first(self):
        report = run_fuzz(
            FuzzConfig(
                seed=0, max_cases=0, datasets=("mti",),
                engines=("mbet", "mbet_vec"),
            )
        )
        assert report.ok
        assert report.cases == 1
        assert report.oracle_runs["agreement"] == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            run_fuzz(FuzzConfig(max_cases=None, time_budget=None))
        with pytest.raises(ValueError):
            run_fuzz(FuzzConfig(max_cases=1, oracles=("nope",)))
        with pytest.raises(ValueError):
            run_fuzz(FuzzConfig(max_cases=1, engines=()))

    def test_time_budget_stops_the_loop(self):
        report = run_fuzz(FuzzConfig(seed=1, time_budget=1e-9))
        assert report.cases == 0
        assert report.stopped == "time_budget"


class TestKillResumeParity:
    """Satellite: interrupt a checkpointed parallel run, resume, expect
    exact parity — the harness oracle drives reconcile_tasks end to end."""

    def test_parity_on_random_graphs(self):
        oracle = kill_resume_oracle(bound_height=1, bound_size=4)
        rng = random.Random(77)
        for _ in range(6):
            g = random_bigraph(rng, max_side=7)
            assert oracle(g) is None

    def test_parity_with_splitting_on_planted_graph(self):
        from repro import planted_bicliques

        g = planted_bicliques(24, 18, 8, noise_edges=20, seed=4)
        assert kill_resume_oracle(bound_height=1, bound_size=4)(g) is None
