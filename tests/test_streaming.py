"""Tests for dynamic maximal-biclique maintenance."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Biclique, BipartiteGraph, run_mbe
from repro.streaming import DynamicMBE
from tests.conftest import G0_MAXIMAL, make_g0


def recompute(d: DynamicMBE) -> frozenset[Biclique]:
    if d.n_edges == 0:
        return frozenset()
    return frozenset(run_mbe(d.as_graph(), "mbet").bicliques)


class TestConstruction:
    def test_empty_start(self):
        d = DynamicMBE()
        assert d.n_edges == 0
        assert d.bicliques == frozenset()

    def test_seeded_from_graph(self, g0):
        d = DynamicMBE(g0)
        assert d.n_edges == 12
        assert d.bicliques == G0_MAXIMAL

    def test_as_graph_roundtrip(self, g0):
        assert DynamicMBE(g0).as_graph() == g0


class TestInsertion:
    def test_first_edge(self):
        d = DynamicMBE()
        result = d.insert_edge(3, 5)
        assert result.added == [Biclique.make([3], [5])]
        assert result.removed == []
        assert d.has_edge(3, 5)

    def test_duplicate_insert_rejected(self):
        d = DynamicMBE()
        d.insert_edge(0, 0)
        with pytest.raises(ValueError, match="already present"):
            d.insert_edge(0, 0)

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            DynamicMBE().insert_edge(-1, 0)

    def test_merge_two_stars(self):
        # u0-v0 and u1-v1 exist; adding u0-v1 creates ({u0},{v0,v1}) and
        # ({u0,u1},{v1}) while killing ({u0},{v0}).
        d = DynamicMBE()
        d.insert_edge(0, 0)
        d.insert_edge(1, 1)
        result = d.insert_edge(0, 1)
        assert Biclique.make([0], [0]) in result.removed
        assert d.bicliques == recompute(d)

    def test_update_result_net(self):
        d = DynamicMBE()
        r = d.insert_edge(0, 0)
        assert r.net == 1

    def test_incremental_equals_batch_on_g0(self):
        d = DynamicMBE()
        for u, v in make_g0().edges():
            d.insert_edge(u, v)
            assert d.bicliques == recompute(d)
        assert d.bicliques == G0_MAXIMAL


class TestDeletion:
    def test_delete_only_edge(self):
        d = DynamicMBE()
        d.insert_edge(0, 0)
        result = d.delete_edge(0, 0)
        assert result.removed == [Biclique.make([0], [0])]
        assert d.bicliques == frozenset()
        assert d.n_edges == 0

    def test_delete_missing_rejected(self):
        with pytest.raises(KeyError):
            DynamicMBE().delete_edge(0, 0)

    def test_delete_splits_biclique(self):
        # complete 2x2 minus one edge leaves two overlapping bicliques
        d = DynamicMBE(BipartiteGraph([(0, 0), (0, 1), (1, 0), (1, 1)]))
        result = d.delete_edge(0, 0)
        assert Biclique.make([0, 1], [0, 1]) in result.removed
        assert d.bicliques == {
            Biclique.make([1], [0, 1]),
            Biclique.make([0, 1], [1]),
        }

    def test_teardown_g0_edge_by_edge(self, g0):
        d = DynamicMBE(g0)
        for u, v in list(g0.edges()):
            d.delete_edge(u, v)
            assert d.bicliques == recompute(d)
        assert d.bicliques == frozenset()

    def test_insert_then_delete_is_identity(self, g0):
        d = DynamicMBE(g0)
        before = d.bicliques
        d.insert_edge(4, 0)
        d.delete_edge(4, 0)
        assert d.bicliques == before


class TestApplyBatch:
    def test_batch_builds_g0(self, g0):
        d = DynamicMBE()
        result = d.apply([("+", u, v) for u, v in g0.edges()])
        assert d.bicliques == G0_MAXIMAL
        assert set(result.added) == G0_MAXIMAL
        assert result.removed == []

    def test_transients_cancel(self):
        d = DynamicMBE()
        result = d.apply([("+", 0, 0), ("-", 0, 0)])
        assert result.added == [] and result.removed == []
        assert d.bicliques == frozenset()

    def test_net_change_matches_states(self, g0):
        d = DynamicMBE(g0)
        before = d.bicliques
        result = d.apply([("-", 0, 0), ("+", 4, 0), ("-", 1, 3)])
        after = d.bicliques
        assert set(result.added) == after - before
        assert set(result.removed) == before - after

    def test_unknown_operation(self):
        with pytest.raises(ValueError, match="unknown stream operation"):
            DynamicMBE().apply([("?", 0, 0)])

    def test_results_sorted(self, g0):
        d = DynamicMBE()
        result = d.apply([("+", u, v) for u, v in g0.edges()])
        assert result.added == sorted(result.added)


class TestRandomizedMaintenance:
    def test_long_mixed_sequence(self):
        rng = random.Random(5)
        d = DynamicMBE()
        edges: set[tuple[int, int]] = set()
        cells = [(u, v) for u in range(6) for v in range(6)]
        for _ in range(150):
            if edges and rng.random() < 0.4:
                e = rng.choice(sorted(edges))
                edges.discard(e)
                d.delete_edge(*e)
            else:
                free = [c for c in cells if c not in edges]
                if not free:
                    continue
                e = rng.choice(free)
                edges.add(e)
                d.insert_edge(*e)
            assert d.bicliques == recompute(d)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4), st.booleans()),
            max_size=25,
        )
    )
    def test_property_arbitrary_update_sequences(self, ops):
        d = DynamicMBE()
        for u, v, is_insert in ops:
            if is_insert and not d.has_edge(u, v):
                d.insert_edge(u, v)
            elif not is_insert and d.has_edge(u, v):
                d.delete_edge(u, v)
        assert d.bicliques == recompute(d)
