"""Docstring examples must execute (they are the first thing users copy)."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.bigraph.matrix
import repro.core.base
import repro.datasets
import repro.streaming.dynamic

MODULES = [
    repro,
    repro.bigraph.matrix,
    repro.core.base,
    repro.datasets,
    repro.streaming.dynamic,
]


@pytest.mark.parametrize("module", MODULES, ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} failures"


def test_at_least_some_examples_exist():
    attempted = sum(doctest.testmod(m).attempted for m in MODULES)
    assert attempted >= 5
